package access

import (
	"testing"

	"repro/internal/logic"
)

func TestParsePattern(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"ioo", false},
		{"", false},
		{"o", false},
		{"iib", true},
		{"IO", true},
	}
	for _, tt := range tests {
		_, err := ParsePattern(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePattern(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
		}
	}
}

func TestPatternSlots(t *testing.T) {
	p := MustPattern("oio")
	if p.Arity() != 3 {
		t.Fatalf("Arity = %d", p.Arity())
	}
	if p.Input(0) || !p.Input(1) || p.Input(2) {
		t.Error("Input slots wrong")
	}
	if p.InputCount() != 1 {
		t.Errorf("InputCount = %d", p.InputCount())
	}
	if !AllOutputPattern(3).AllOutput() {
		t.Error("AllOutputPattern must be all output")
	}
	if AllInputPattern(2) != "ii" {
		t.Errorf("AllInputPattern(2) = %s", AllInputPattern(2))
	}
}

func TestPatternSubsumes(t *testing.T) {
	tests := []struct {
		p, q string
		want bool
	}{
		{"ooo", "ioo", true},  // fewer inputs subsumes more inputs
		{"ioo", "ooo", false}, // extra input slot is more restrictive
		{"oio", "iio", true},
		{"oio", "ioo", false},
		{"oo", "ooo", false}, // arity mismatch
		{"ii", "ii", true},
	}
	for _, tt := range tests {
		if got := MustPattern(tt.p).Subsumes(MustPattern(tt.q)); got != tt.want {
			t.Errorf("%s.Subsumes(%s) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestSetAddAndLookup(t *testing.T) {
	s := NewSet()
	if err := s.Add("B", MustPattern("ioo")); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("B", MustPattern("oio")); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("B", MustPattern("ioo")); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Patterns("B")); got != 2 {
		t.Errorf("duplicate Add must be ignored; got %d patterns", got)
	}
	if err := s.Add("B", MustPattern("io")); err == nil {
		t.Error("Add must reject conflicting arity")
	}
	if s.Arity("B") != 3 || s.Arity("Z") != -1 {
		t.Error("Arity lookup wrong")
	}
	if !s.Has("B") || s.Has("Z") {
		t.Error("Has lookup wrong")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet().MustAdd("C", "oo").MustAdd("B", "ioo").MustAdd("B", "oio")
	if got, want := s.String(), "B^ioo B^oio C^oo"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSetMinimize(t *testing.T) {
	s := NewSet().
		MustAdd("B", "ooo"). // subsumes both others
		MustAdd("B", "ioo").
		MustAdd("B", "oio").
		MustAdd("C", "io").
		MustAdd("C", "oi") // incomparable: both kept
	m := s.Minimize()
	if got := m.String(); got != "B^ooo C^io C^oi" {
		t.Errorf("Minimize = %q, want %q", got, "B^ooo C^io C^oi")
	}
	// Callability is preserved: anything callable under s is callable
	// under m and vice versa.
	atom := logic.NewAtom("B", logic.Var("x"), logic.Var("y"), logic.Var("z"))
	for _, bound := range []map[string]bool{
		{}, {"x": true}, {"y": true}, {"x": true, "y": true},
	} {
		_, okS := s.Callable(atom, bound)
		_, okM := m.Callable(atom, bound)
		if okS != okM {
			t.Errorf("bound=%v: callable(s)=%v callable(m)=%v", bound, okS, okM)
		}
	}
}

func TestSetMinimizeKeepsOneOfIdenticalTwins(t *testing.T) {
	s := NewSet()
	// Add can't create duplicates, so build the edge case directly via
	// two relations with a single pattern each.
	s.MustAdd("R", "io")
	m := s.Minimize()
	if len(m.Patterns("R")) != 1 {
		t.Errorf("Minimize dropped a sole pattern: %v", m.Patterns("R"))
	}
}

func TestCallable(t *testing.T) {
	s := NewSet().MustAdd("B", "ioo").MustAdd("B", "oio")
	atom := logic.NewAtom("B", logic.Var("i"), logic.Var("a"), logic.Var("t"))

	if _, ok := s.Callable(atom, map[string]bool{}); ok {
		t.Error("B with no bound vars must not be callable (Example 1)")
	}
	if p, ok := s.Callable(atom, map[string]bool{"i": true}); !ok || p != "ioo" {
		t.Errorf("with i bound want ioo, got %v %v", p, ok)
	}
	if p, ok := s.Callable(atom, map[string]bool{"a": true}); !ok || p != "oio" {
		t.Errorf("with a bound want oio, got %v %v", p, ok)
	}
	// With both bound, prefer the pattern with more input slots; both have
	// one, so either is fine.
	if _, ok := s.Callable(atom, map[string]bool{"i": true, "a": true}); !ok {
		t.Error("with i and a bound B must be callable")
	}
	// Constants count as bound.
	catom := logic.NewAtom("B", logic.Const("0471"), logic.Var("a"), logic.Var("t"))
	if p, ok := s.Callable(catom, map[string]bool{}); !ok || p != "ioo" {
		t.Errorf("constant in input slot must satisfy it; got %v %v", p, ok)
	}
}

func TestInVarsOutVars(t *testing.T) {
	atom := logic.NewAtom("B", logic.Var("i"), logic.Var("a"), logic.Var("t"))
	in := InVars(atom, MustPattern("oio"))
	if len(in) != 1 || in[0] != logic.Var("a") {
		t.Errorf("InVars = %v", in)
	}
	out := OutVars(atom, MustPattern("oio"))
	if len(out) != 2 || out[0] != logic.Var("i") || out[1] != logic.Var("t") {
		t.Errorf("OutVars = %v", out)
	}
}

// Example 1 of the paper: Q(i,a,t) :- B(i,a,t), C(i,a), not L(i) with
// patterns B^ioo, B^oio, C^oo, L^o. As written the query is not
// executable; with C first it is.
func paperPatterns() *Set {
	return NewSet().MustAdd("B", "ioo").MustAdd("B", "oio").MustAdd("C", "oo").MustAdd("L", "o")
}

func TestAdornInOrderExample1(t *testing.T) {
	ps := paperPatterns()
	b := logic.Pos(logic.NewAtom("B", logic.Var("i"), logic.Var("a"), logic.Var("t")))
	c := logic.Pos(logic.NewAtom("C", logic.Var("i"), logic.Var("a")))
	l := logic.Neg(logic.NewAtom("L", logic.Var("i")))

	if _, ok := AdornInOrder([]logic.Literal{b, c, l}, ps); ok {
		t.Error("B, C, not L must not be executable in that order")
	}
	plan, ok := AdornInOrder([]logic.Literal{c, b, l}, ps)
	if !ok {
		t.Fatal("C, B, not L must be executable")
	}
	if plan[0].Pattern != "oo" {
		t.Errorf("C pattern = %s, want oo", plan[0].Pattern)
	}
	// With i and a bound, the chosen B pattern must be usable; both are.
	if plan[1].Pattern != "ioo" && plan[1].Pattern != "oio" {
		t.Errorf("B pattern = %s", plan[1].Pattern)
	}
	if plan[2].Pattern != "o" {
		t.Errorf("L pattern = %s, want o", plan[2].Pattern)
	}
	// A negated call first can neither bind nor be executed unbound.
	if _, ok := AdornInOrder([]logic.Literal{l, c, b}, ps); ok {
		t.Error("not L first must not be executable")
	}
}

func TestAdornNegatedNeedsSomePattern(t *testing.T) {
	// All vars bound but the negated relation has no pattern at all.
	ps := NewSet().MustAdd("R", "o")
	r := logic.Pos(logic.NewAtom("R", logic.Var("x")))
	n := logic.Neg(logic.NewAtom("M", logic.Var("x")))
	if _, ok := AdornInOrder([]logic.Literal{r, n}, ps); ok {
		t.Error("negated literal over a relation with no access pattern must not be executable")
	}
	ps.MustAdd("M", "i")
	plan, ok := AdornInOrder([]logic.Literal{r, n}, ps)
	if !ok || plan[1].Pattern != "i" {
		t.Errorf("negated literal with all vars bound must use some pattern; got %v %v", plan, ok)
	}
}

func TestAdornStrategies(t *testing.T) {
	// B has a narrow (two-input) and a wide (one-input) pattern; with
	// both variables bound, the strategies pick opposite ones.
	ps := NewSet().MustAdd("S", "oo").MustAdd("B", "iio").MustAdd("B", "ioo")
	body := []logic.Literal{
		logic.Pos(logic.NewAtom("S", logic.Var("x"), logic.Var("y"))),
		logic.Pos(logic.NewAtom("B", logic.Var("x"), logic.Var("y"), logic.Var("z"))),
	}
	most, ok := AdornInOrderPrefer(body, ps, PreferMostInputs)
	if !ok || most[1].Pattern != "iio" {
		t.Errorf("most-inputs strategy picked %v", most)
	}
	least, ok := AdornInOrderPrefer(body, ps, PreferFewestInputs)
	if !ok || least[1].Pattern != "ioo" {
		t.Errorf("fewest-inputs strategy picked %v", least)
	}
	// Strategy never changes executability.
	if _, okM := AdornInOrderPrefer(body[1:], ps, PreferMostInputs); okM {
		t.Error("B alone is not executable under either strategy")
	}
	if _, okL := AdornInOrderPrefer(body[1:], ps, PreferFewestInputs); okL {
		t.Error("B alone is not executable under either strategy")
	}
	// Negated literals honor the strategy too.
	ps2 := NewSet().MustAdd("R", "oo").MustAdd("M", "io").MustAdd("M", "oo")
	body2 := []logic.Literal{
		logic.Pos(logic.NewAtom("R", logic.Var("x"), logic.Var("y"))),
		logic.Neg(logic.NewAtom("M", logic.Var("x"), logic.Var("y"))),
	}
	m2, _ := AdornInOrderPrefer(body2, ps2, PreferMostInputs)
	l2, _ := AdornInOrderPrefer(body2, ps2, PreferFewestInputs)
	if m2[1].Pattern != "io" || l2[1].Pattern != "oo" {
		t.Errorf("negated strategy patterns = %v / %v", m2[1].Pattern, l2[1].Pattern)
	}
}

func TestExecutableCQ(t *testing.T) {
	ps := paperPatterns()
	q := logic.CQ{
		HeadPred: "Q",
		HeadArgs: []logic.Term{logic.Var("i"), logic.Var("a"), logic.Var("t")},
		Body: []logic.Literal{
			logic.Pos(logic.NewAtom("C", logic.Var("i"), logic.Var("a"))),
			logic.Pos(logic.NewAtom("B", logic.Var("i"), logic.Var("a"), logic.Var("t"))),
			logic.Neg(logic.NewAtom("L", logic.Var("i"))),
		},
	}
	if !ExecutableCQ(q, ps) {
		t.Error("reordered Example 1 must be executable")
	}
	if !ExecutableCQ(logic.FalseQuery("Q", nil), ps) {
		t.Error("false must be vacuously executable")
	}
	if ExecutableCQ(logic.CQ{HeadPred: "Q"}, ps) {
		t.Error("true (empty body) must not be executable")
	}
	if !ExecutableUCQ(logic.Union(q, q), ps) {
		t.Error("union of executable rules must be executable")
	}
}
