// Package access implements access patterns and adornments for relations
// with limited query capabilities, per Section 3 of Nash & Ludäscher
// (EDBT 2004). An access pattern for a k-ary relation R is a word α over
// {i, o} of length k, written R^α: position j is an input slot when
// α(j) = 'i' (a value must be supplied to call the source) and an output
// slot when α(j) = 'o'.
package access

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
)

// Pattern is a word over the alphabet {i, o}; e.g. "oio" for B^oio.
type Pattern string

// ParsePattern validates s as a pattern word.
func ParsePattern(s string) (Pattern, error) {
	for i := 0; i < len(s); i++ {
		if s[i] != 'i' && s[i] != 'o' {
			return "", fmt.Errorf("access: invalid pattern %q: position %d is %q, want 'i' or 'o'", s, i+1, s[i])
		}
	}
	return Pattern(s), nil
}

// MustPattern is ParsePattern that panics on error; for tests and literals.
func MustPattern(s string) Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Arity returns the length of the pattern word.
func (p Pattern) Arity() int { return len(p) }

// Input reports whether slot j (0-based) is an input slot.
func (p Pattern) Input(j int) bool { return p[j] == 'i' }

// Output reports whether slot j (0-based) is an output slot.
func (p Pattern) Output(j int) bool { return p[j] == 'o' }

// InputCount returns the number of input slots.
func (p Pattern) InputCount() int {
	n := 0
	for j := 0; j < len(p); j++ {
		if p[j] == 'i' {
			n++
		}
	}
	return n
}

// AllOutput reports whether every slot is an output slot (the pattern of
// an unrestricted relation).
func (p Pattern) AllOutput() bool { return p.InputCount() == 0 }

// AllOutputPattern returns the all-output pattern of the given arity.
func AllOutputPattern(arity int) Pattern {
	return Pattern(strings.Repeat("o", arity))
}

// AllInputPattern returns the all-input pattern of the given arity.
func AllInputPattern(arity int) Pattern {
	return Pattern(strings.Repeat("i", arity))
}

// Subsumes reports whether p is at least as permissive as q: every input
// slot of p is also an input slot of q. ("Bound is easier", [Ull88]: any
// call that satisfies q also satisfies p when p has fewer input slots.)
func (p Pattern) Subsumes(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for j := 0; j < len(p); j++ {
		if p[j] == 'i' && q[j] == 'o' {
			return false
		}
	}
	return true
}

// Set maps relation names to the access patterns available for them.
// A relation absent from the set has no access pattern and cannot be
// called at all.
type Set struct {
	patterns map[string][]Pattern
}

// NewSet returns an empty pattern set.
func NewSet() *Set { return &Set{patterns: map[string][]Pattern{}} }

// Add registers a pattern for relation name. Duplicate registrations are
// ignored. It returns an error if a pattern of different arity was
// already registered for the relation.
func (s *Set) Add(name string, p Pattern) error {
	for _, q := range s.patterns[name] {
		if q == p {
			return nil
		}
		if len(q) != len(p) {
			return fmt.Errorf("access: relation %s has patterns of conflicting arities %d and %d", name, len(q), len(p))
		}
	}
	s.patterns[name] = append(s.patterns[name], p)
	return nil
}

// MustAdd is Add that panics on error; for tests and literals.
func (s *Set) MustAdd(name string, pat string) *Set {
	if err := s.Add(name, MustPattern(pat)); err != nil {
		panic(err)
	}
	return s
}

// Patterns returns the patterns registered for the relation.
func (s *Set) Patterns(name string) []Pattern { return s.patterns[name] }

// Has reports whether any pattern is registered for the relation.
func (s *Set) Has(name string) bool { return len(s.patterns[name]) > 0 }

// Relations returns the relation names with at least one pattern, sorted.
func (s *Set) Relations() []string {
	out := make([]string, 0, len(s.patterns))
	for name := range s.patterns {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Arity returns the arity of the relation's patterns, or -1 if none.
func (s *Set) Arity(name string) int {
	ps := s.patterns[name]
	if len(ps) == 0 {
		return -1
	}
	return len(ps[0])
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := NewSet()
	for name, ps := range s.patterns {
		out.patterns[name] = append([]Pattern(nil), ps...)
	}
	return out
}

// String renders the set as "B^ioo B^oio C^oo L^o" in sorted order.
func (s *Set) String() string {
	var parts []string
	for _, name := range s.Relations() {
		for _, p := range s.patterns[name] {
			parts = append(parts, fmt.Sprintf("%s^%s", name, p))
		}
	}
	return strings.Join(parts, " ")
}

// Minimize returns a copy of the set with subsumed patterns removed: a
// pattern q is dropped when another pattern p of the same relation
// subsumes it (p's input slots are a subset of q's), since any call that
// satisfies q can be made through p with the extra bindings post-joined
// ("bound is easier", [Ull88]). Planning over the minimized set accepts
// exactly the same queries.
func (s *Set) Minimize() *Set {
	out := NewSet()
	for name, ps := range s.patterns {
		for i, q := range ps {
			subsumed := false
			for j, p := range ps {
				if i == j {
					continue
				}
				if p.Subsumes(q) && (!q.Subsumes(p) || j < i) {
					// Strictly more permissive, or an identical twin that
					// appears earlier (keep one representative).
					subsumed = true
					break
				}
			}
			if !subsumed {
				out.patterns[name] = append(out.patterns[name], q)
			}
		}
	}
	return out
}

// Callable reports whether a positive literal over atom a can be called
// when the variables in bound are already bound: some registered pattern
// has all its input-slot arguments bound (constants are always bound).
// It returns one such pattern (the one with the most input slots among
// the usable ones, to push selections into the source) and true, or
// ("", false) if none is usable.
func (s *Set) Callable(a logic.Atom, bound map[string]bool) (Pattern, bool) {
	var best Pattern
	found := false
	for _, p := range s.patterns[a.Pred] {
		if len(p) != len(a.Args) {
			continue
		}
		ok := true
		for j, t := range a.Args {
			if p.Input(j) && t.IsVar() && !bound[t.Name] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if !found || p.InputCount() > best.InputCount() {
			best = p
			found = true
		}
	}
	return best, found
}

// InVars returns the variables of atom a that sit in input slots of
// pattern p, in order of first occurrence. This is invars(L) of Figure 1
// in the paper once an adornment is fixed.
func InVars(a logic.Atom, p Pattern) []logic.Term {
	var out []logic.Term
	seen := map[string]bool{}
	for j, t := range a.Args {
		if p.Input(j) && t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t)
		}
	}
	return out
}

// OutVars returns the variables of atom a in output slots of pattern p.
func OutVars(a logic.Atom, p Pattern) []logic.Term {
	var out []logic.Term
	seen := map[string]bool{}
	for j, t := range a.Args {
		if p.Output(j) && t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t)
		}
	}
	return out
}
