package core

import (
	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/logic"
)

// OptimizeOrder returns an executable reordering of q chosen to reduce
// source traffic, or q unchanged and false if q is not orderable. Where
// ANSWERABLE (Figure 1) emits literals in discovery order — its job is
// only to decide orderability — this planner applies two classic
// heuristics at each step, within the same quadratic budget:
//
//  1. filters first: a callable negated literal can only shrink the
//     binding set, so it is always taken before any positive literal;
//  2. bound-is-easier [Ull88]: among callable positive literals, prefer
//     the one with the largest fraction of already-bound arguments
//     (fewer new bindings per call), breaking ties toward patterns with
//     more input slots (pushing selection into the source) and then
//     original body order (determinism).
//
// The reordering is a permutation of q's body, so it is equivalent to q.
func OptimizeOrder(q logic.CQ, ps *access.Set) (logic.CQ, bool) {
	if q.False {
		return q.Clone(), true
	}
	if !containment.Satisfiable(q) {
		return logic.FalseQuery(q.HeadPred, q.HeadArgs), true
	}
	out := logic.CQ{HeadPred: q.HeadPred, HeadArgs: cloneTerms(q.HeadArgs)}
	taken := make([]bool, len(q.Body))
	bound := map[string]bool{}
	for picked := 0; picked < len(q.Body); picked++ {
		best := -1
		bestScore := -1.0
		bestInputs := -1
		for i, l := range q.Body {
			if taken[i] || !answerableNow(l, ps, bound) {
				continue
			}
			if l.Negated {
				// Filters first, in body order.
				best = i
				break
			}
			score := boundFraction(l.Atom, bound)
			inputs := 0
			if p, ok := ps.Callable(l.Atom, bound); ok {
				inputs = p.InputCount()
			}
			if score > bestScore || (score == bestScore && inputs > bestInputs) {
				best, bestScore, bestInputs = i, score, inputs
			}
		}
		if best < 0 {
			return q.Clone(), false
		}
		taken[best] = true
		out.Body = append(out.Body, q.Body[best].Clone())
		for _, v := range q.Body[best].Vars() {
			bound[v.Name] = true
		}
	}
	return out, true
}

// boundFraction is the fraction of argument positions holding constants
// or already-bound variables.
func boundFraction(a logic.Atom, bound map[string]bool) float64 {
	if len(a.Args) == 0 {
		return 1
	}
	n := 0
	for _, t := range a.Args {
		if t.IsConst() || (t.IsVar() && bound[t.Name]) {
			n++
		}
	}
	return float64(n) / float64(len(a.Args))
}

// OptimizeOrderUCQ optimizes every rule, reporting whether all were
// orderable.
func OptimizeOrderUCQ(u logic.UCQ, ps *access.Set) (logic.UCQ, bool) {
	rules := make([]logic.CQ, len(u.Rules))
	ok := true
	for i, r := range u.Rules {
		var ri bool
		rules[i], ri = OptimizeOrder(r, ps)
		ok = ok && ri
	}
	return logic.UCQ{Rules: rules}, ok
}
