package core

import (
	"testing"

	"repro/internal/containment"
	"repro/internal/logic"
)

func TestFeasibleLimitedFastPaths(t *testing.T) {
	// Fast paths never consume budget.
	q := cq(t, `Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
	ps := pats(t, `B^ioo B^oio C^oo L^o`)
	res, err := FeasibleLimited(logic.AsUnion(q), ps, 0)
	if err != nil || !res.Feasible || res.Verdict != VerdictUnderEqualsOver {
		t.Errorf("fast path must ignore the budget: %v %v", res, err)
	}
	u2 := ucq(t, "Q(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).")
	ps2 := pats(t, `S^o R^oo B^oi T^oo`)
	res2, err := FeasibleLimited(u2, ps2, 0)
	if err != nil || res2.Feasible || res2.Verdict != VerdictNullInOverestimate {
		t.Errorf("null path must ignore the budget: %v %v", res2, err)
	}
}

func TestFeasibleLimitedContainmentPath(t *testing.T) {
	q := cq(t, `Q(x) :- F(x), B(x), B(y), F(z).`)
	ps := pats(t, `F^o B^i`)
	res, err := FeasibleLimited(logic.AsUnion(q), ps, 1_000_000)
	if err != nil || !res.Feasible || res.Nodes == 0 {
		t.Errorf("containment path: %v %v", res, err)
	}
	if _, err := FeasibleLimited(logic.AsUnion(q), ps, 0); err != containment.ErrBudget {
		t.Errorf("zero budget on containment path must fail: %v", err)
	}
}

func TestExplainFeasibleInfeasibleByContainment(t *testing.T) {
	q := cq(t, `Q(x) :- F(x), H(y).`)
	ps := pats(t, `F^o H^i`)
	ex := ExplainFeasible(logic.AsUnion(q), ps)
	if ex.Result.Feasible || ex.Result.Verdict != VerdictContainment {
		t.Errorf("result = %+v", ex.Result)
	}
	if len(ex.Witnesses) != 0 {
		t.Error("infeasible verdicts carry no witnesses")
	}
}

func TestExplainFeasibleMultiRuleWitnesses(t *testing.T) {
	u := ucq(t, `
		Q(x) :- F(x), G(x).
		Q(x) :- F(x), H(x), B(y).
		Q(x) :- F(x).
	`)
	ps := pats(t, `F^o G^o H^o B^i`)
	ex := ExplainFeasible(u, ps)
	if !ex.Result.Feasible {
		t.Fatalf("Example 10 must be feasible: %+v", ex.Result)
	}
	if len(ex.Witnesses) != len(ex.Result.Plans.Over.Rules) {
		t.Errorf("witnesses = %d, over rules = %d", len(ex.Witnesses), len(ex.Result.Plans.Over.Rules))
	}
	checker := containment.NewChecker(u)
	for i, w := range ex.Witnesses {
		if err := checker.Verify(ex.Result.Plans.Over.Rules[i], w); err != nil {
			t.Errorf("witness %d: %v", i, err)
		}
	}
}

func TestFeasibleResultString(t *testing.T) {
	q := cq(t, `Q(x) :- F(x).`)
	ps := pats(t, `F^o`)
	s := FeasibleCQ(q, ps).String()
	if s != "feasible (by underestimate equals overestimate)" {
		t.Errorf("String = %q", s)
	}
	q2 := cq(t, `Q(x) :- F(x), H(y).`)
	ps2 := pats(t, `F^o H^i`)
	s2 := FeasibleCQ(q2, ps2).String()
	if s2 != "infeasible (by containment test ans(Q) ⊑ Q)" {
		t.Errorf("String = %q", s2)
	}
	if Verdict(99).String() != "unknown" {
		t.Error("unknown verdict string")
	}
}

func TestAnswerableUnsafeNegationNeverAnswerable(t *testing.T) {
	// A negated literal whose variable cannot ever be bound stays out of
	// ans(Q) even when the relation is callable.
	q := cq(t, `Q(x) :- F(x), not S(z).`)
	ps := pats(t, `F^o S^o`)
	a := AnswerablePart(q, ps)
	if len(a.Body) != 1 || a.Body[0].Atom.Pred != "F" {
		t.Errorf("ans = %s", a)
	}
	// With S^o and z free, the query is not orderable...
	if Orderable(q, ps) {
		t.Error("not orderable: z cannot be bound")
	}
	// ...and infeasible in general (ans(Q) = F(x) is strictly larger).
	res := FeasibleCQ(q, ps)
	if res.Feasible {
		t.Errorf("must be infeasible: %v", res)
	}
}
