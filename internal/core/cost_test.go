package core

import (
	"testing"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/logic"
)

func TestCostOrderPrefersSmallRelationFirst(t *testing.T) {
	// Big(x, w) has 10000 tuples, Small(x, v) has 10: the cost model
	// must start with Small even though Big appears first.
	q := cq(t, `Q(x) :- Big(x, w), Small(x, v).`)
	ps := pats(t, `Big^oo Big^io Small^oo Small^io`)
	st := StatsFromCardinalities(map[string]int{"Big": 10000, "Small": 10})
	ordered, ok := CostOrder(q, ps, st)
	if !ok {
		t.Fatal("orderable")
	}
	if ordered.Body[0].Atom.Pred != "Small" {
		t.Errorf("want Small first, got %s", ordered)
	}
	if !containment.Equivalent(logic.AsUnion(q), logic.AsUnion(ordered)) {
		t.Error("cost ordering must preserve equivalence")
	}
}

func TestCostOrderSchedulesFilterEarly(t *testing.T) {
	q := cq(t, `Q(x, y) :- R1(x, w), R2(w, y), not L(x).`)
	ps := pats(t, `R1^oo R2^io L^i`)
	st := StatsFromCardinalities(map[string]int{"R1": 100, "R2": 100, "L": 90})
	ordered, ok := CostOrder(q, ps, st)
	if !ok {
		t.Fatal("orderable")
	}
	if !ordered.Body[1].Negated {
		t.Errorf("filter must run second: %s", ordered)
	}
}

func TestCostOrderRespectsExecutability(t *testing.T) {
	// Tiny(w) is the smallest relation but needs w bound; the optimizer
	// cannot start with it.
	q := cq(t, `Q(x) :- Gen(x, w), Tiny(w).`)
	ps := pats(t, `Gen^oo Tiny^i`)
	st := StatsFromCardinalities(map[string]int{"Gen": 1000, "Tiny": 1})
	ordered, ok := CostOrder(q, ps, st)
	if !ok {
		t.Fatal("orderable")
	}
	if ordered.Body[0].Atom.Pred != "Gen" {
		t.Errorf("must start with the only callable literal: %s", ordered)
	}
	if _, err := ExecutionOrder(ordered, ps); err != nil {
		t.Errorf("cost order not executable: %v", err)
	}
}

func TestCostOrderUnorderable(t *testing.T) {
	q := cq(t, `Q(x) :- F(x), B(y).`)
	ps := pats(t, `F^o B^i`)
	if _, ok := CostOrder(q, ps, Stats{}); ok {
		t.Error("unorderable query must be rejected")
	}
}

func TestCostOrderSpecialCases(t *testing.T) {
	ps := pats(t, `R^o`)
	if got, ok := CostOrder(logic.FalseQuery("Q", nil), ps, Stats{}); !ok || !got.False {
		t.Error("false must pass through")
	}
	unsat := cq(t, `Q(x) :- R(x), not R(x).`)
	if got, ok := CostOrder(unsat, ps, Stats{}); !ok || !got.False {
		t.Errorf("unsatisfiable must become false: %v %v", got, ok)
	}
	u := logic.Union(cq(t, `Q(x) :- R(x).`))
	if got, ok := CostOrderUCQ(u, ps, Stats{}); !ok || len(got.Rules) != 1 {
		t.Errorf("union cost ordering failed: %v %v", got, ok)
	}
}

func TestCostOrderLargeBodyFallsBackToGreedy(t *testing.T) {
	// Body longer than ExhaustiveLimit: must still return an executable
	// equivalent order.
	body := make([]logic.Literal, 0, ExhaustiveLimit+2)
	ps := access.NewSet()
	for i := 0; i <= ExhaustiveLimit+1; i++ {
		name := "R" + string(rune('A'+i))
		_ = ps.Add(name, "o")
		body = append(body, logic.Pos(logic.NewAtom(name, logic.Var("x"))))
	}
	q := logic.CQ{HeadPred: "Q", HeadArgs: []logic.Term{logic.Var("x")}, Body: body}
	ordered, ok := CostOrder(q, ps, Stats{})
	if !ok || len(ordered.Body) != len(body) {
		t.Fatalf("fallback failed: %v %v", ordered, ok)
	}
	if _, err := ExecutionOrder(ordered, ps); err != nil {
		t.Errorf("fallback order not executable: %v", err)
	}
}

func TestStatsDefaults(t *testing.T) {
	var st Stats
	if st.card("unknown") != DefaultCard || st.distinct("unknown") != DefaultDistinct {
		t.Error("defaults not applied")
	}
	st2 := StatsFromCardinalities(map[string]int{"R": 1})
	if st2.DistinctPerColumn["R"] < 2 {
		t.Error("distinct floor not applied")
	}
}
