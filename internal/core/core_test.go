package core

import (
	"testing"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/workload"
)

func cq(t *testing.T, src string) logic.CQ {
	t.Helper()
	q, err := parser.ParseCQ(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func ucq(t *testing.T, src string) logic.UCQ {
	t.Helper()
	u, err := parser.ParseUCQ(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return u
}

func pats(t *testing.T, src string) *access.Set {
	t.Helper()
	s, err := parser.ParsePatterns(src)
	if err != nil {
		t.Fatalf("parse patterns %q: %v", src, err)
	}
	return s
}

// Example 1 of the paper: the query is not executable as written but is
// orderable (call C first), hence feasible by the cheap certificate.
func TestExample1(t *testing.T) {
	q := cq(t, `Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
	ps := pats(t, `B^ioo B^oio C^oo L^o`)

	if Executable(logic.AsUnion(q), ps) {
		t.Error("Example 1 must not be executable as written")
	}
	if !Orderable(q, ps) {
		t.Error("Example 1 must be orderable")
	}
	a := AnswerablePart(q, ps)
	// Figure 1 scans the body in order within each round, so after C(i, a)
	// binds i and a, the same pass already picks up not L(i), and B is
	// added in the next round.
	if got, want := a.String(), "Q(i, a, t) :- C(i, a), not L(i), B(i, a, t)"; got != want {
		t.Errorf("ans(Q) = %q, want %q", got, want)
	}
	r, ok := Reorder(q, ps)
	if !ok || !access.ExecutableCQ(r, ps) {
		t.Errorf("Reorder failed: %v %v", r, ok)
	}
	res := FeasibleCQ(q, ps)
	if !res.Feasible || res.Verdict != VerdictUnderEqualsOver {
		t.Errorf("FEASIBLE = %v, want feasible by fast path", res)
	}
}

// Example 3 of the paper: feasible but not orderable.
func TestExample3(t *testing.T) {
	u := ucq(t, `
		Q(a) :- B(i, a, t), L(i), B(i', a', t).
		Q(a) :- B(i, a, t), L(i), not B(i', a', t).
	`)
	ps := pats(t, `B^ioo B^oio L^o`)

	if OrderableUCQ(u, ps) {
		t.Error("Example 3 must not be orderable (i' and a' cannot be bound)")
	}
	res := Feasible(u, ps)
	if !res.Feasible {
		t.Errorf("Example 3 must be feasible: %v", res)
	}
	if res.Verdict != VerdictContainment {
		t.Errorf("Example 3 needs the containment check, got %v", res.Verdict)
	}
	// The equivalent executable query the paper gives.
	qp := ucq(t, `Q(a) :- L(i), B(i, a, t).`)
	if !containment.Equivalent(res.Plans.Over, qp) {
		t.Error("overestimate must be equivalent to Q'(a) :- L(i), B(i, a, t)")
	}
}

// Example 4 of the paper: underestimate and overestimate plans, with a
// null binding in the overestimate; the query is infeasible.
func TestExample4(t *testing.T) {
	u := ucq(t, `
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := pats(t, `S^o R^oo B^oi T^oo`)

	plans := ComputePlans(u, ps)
	// Rule 1: answerable part is R(x,z), ¬S(z); B(x,y) is unanswerable.
	ra := plans.Rules[0]
	if got, want := ra.Ans.String(), "Q(x, y) :- R(x, z), not S(z)"; got != want {
		t.Errorf("ans(Q1) = %q, want %q", got, want)
	}
	if len(ra.Unanswerable) != 1 || ra.Unanswerable[0].Atom.Pred != "B" {
		t.Errorf("U1 = %v, want [B(x, y)]", ra.Unanswerable)
	}
	if !ra.Under.False {
		t.Errorf("Q1^u must be false, got %s", ra.Under)
	}
	if got, want := ra.Over.String(), "Q(x, null) :- R(x, z), not S(z)"; got != want {
		t.Errorf("Q1^o = %q, want %q", got, want)
	}
	// Rule 2 is fully answerable.
	rb := plans.Rules[1]
	if !rb.Complete() || !rb.Under.Equal(rb.Over) {
		t.Errorf("rule 2 must be complete: %+v", rb)
	}
	// Assembled plans: Q^u has one rule (T), Q^o has two.
	if len(plans.Under.Rules) != 1 || plans.Under.Rules[0].Body[0].Atom.Pred != "T" {
		t.Errorf("Q^u = %s", plans.Under)
	}
	if len(plans.Over.Rules) != 2 {
		t.Errorf("Q^o = %s", plans.Over)
	}
	if !plans.HasNull() {
		t.Error("overestimate must contain null")
	}

	res := Feasible(u, ps)
	if res.Feasible || res.Verdict != VerdictNullInOverestimate {
		t.Errorf("Example 4 must be infeasible by the null certificate, got %v", res)
	}
}

// Example 9 of the paper (CQ processing): ans(Q) = F(x), B(x), F(z) and
// the containment check decides feasibility.
func TestExample9(t *testing.T) {
	q := cq(t, `Q(x) :- F(x), B(x), B(y), F(z).`)
	ps := pats(t, `F^o B^i`)

	if Orderable(q, ps) {
		t.Error("Example 9 must not be orderable")
	}
	a := AnswerablePart(q, ps)
	if got, want := a.String(), "Q(x) :- F(x), B(x), F(z)"; got != want {
		t.Errorf("ans(Q) = %q, want %q", got, want)
	}
	res := FeasibleCQ(q, ps)
	if !res.Feasible || res.Verdict != VerdictContainment {
		t.Errorf("Example 9 must be feasible via containment, got %v", res)
	}
}

// Example 10 of the paper (UCQ processing).
func TestExample10(t *testing.T) {
	u := ucq(t, `
		Q(x) :- F(x), G(x).
		Q(x) :- F(x), H(x), B(y).
		Q(x) :- F(x).
	`)
	ps := pats(t, `F^o G^o H^o B^i`)

	a := AnswerableUCQ(u, ps)
	want := ucq(t, `
		Q(x) :- F(x), G(x).
		Q(x) :- F(x), H(x).
		Q(x) :- F(x).
	`)
	if !a.Equal(want) {
		t.Errorf("ans(Q) = %s, want %s", a, want)
	}
	res := Feasible(u, ps)
	if !res.Feasible || res.Verdict != VerdictContainment {
		t.Errorf("Example 10 must be feasible via containment, got %v", res)
	}
}

// An infeasible query where the unanswerable literal matters: no rule
// covers it, so ans(Q) ⊑ Q fails.
func TestInfeasibleByContainment(t *testing.T) {
	q := cq(t, `Q(x) :- F(x), H(y).`)
	ps := pats(t, `F^o H^i`)
	// ans(Q) = F(x); H(y) is unanswerable; head x is answerable so no
	// null; F(x) is not contained in Q.
	res := FeasibleCQ(q, ps)
	if res.Feasible {
		t.Errorf("query must be infeasible, got %v", res)
	}
	if res.Verdict != VerdictContainment {
		t.Errorf("verdict = %v, want containment", res.Verdict)
	}
}

func TestUnsatisfiableRuleHandling(t *testing.T) {
	q := cq(t, `Q(x) :- R(x), not R(x).`)
	ps := pats(t, `R^o`)
	a := AnswerablePart(q, ps)
	if !a.False {
		t.Errorf("ans of unsatisfiable rule must be false, got %s", a)
	}
	res := FeasibleCQ(q, ps)
	if !res.Feasible {
		t.Errorf("unsatisfiable query is equivalent to false, hence feasible: %v", res)
	}
	// An unsatisfiable body can still be orderable as written.
	if !Orderable(q, ps) {
		t.Error("R(x), not R(x) with R^o is orderable syntactically")
	}
	// ... but not with input-only patterns.
	ps2 := pats(t, `R^i`)
	if Orderable(q, ps2) {
		t.Error("R(x), not R(x) with R^i must not be orderable")
	}
}

// Proposition 4: Q ⊑ ans(Q), checked on the paper's examples.
func TestProposition4OnExamples(t *testing.T) {
	cases := []struct {
		query    string
		patterns string
	}{
		{`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`, `B^ioo B^oio C^oo L^o`},
		{`Q(x) :- F(x), B(x), B(y), F(z).`, `F^o B^i`},
		{"Q(x) :- F(x), G(x).\nQ(x) :- F(x), H(x), B(y).\nQ(x) :- F(x).", `F^o G^o H^o B^i`},
		{"Q(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).", `S^o R^oo B^oi T^oo`},
	}
	for _, c := range cases {
		u := ucq(t, c.query)
		ps := pats(t, c.patterns)
		a := AnswerableUCQ(u, ps)
		// Skip the containment check when ans is unsafe (nulls would be
		// needed); Proposition 4 concerns the logical ans(Q).
		if !containment.ContainedUCQ(u, a) {
			t.Errorf("Proposition 4 violated: %s not contained in its answerable part %s", u, a)
		}
	}
}

// Proposition 9 (answerability transfers to the positive part): every
// positive literal of ans(Q) also appears in ans(Q⁺).
func TestProposition9Property(t *testing.T) {
	g := workload.New(71)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.5, 2)
	cfg := workload.QueryConfig{PosLits: 4, NegLits: 2, VarPool: 5, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	for i := 0; i < 200; i++ {
		q := g.CQ(s, cfg)
		if !containment.Satisfiable(q) {
			continue
		}
		aQ := AnswerablePart(q, ps)
		aPos := AnswerablePart(q.PositivePart(), ps)
		inPos := map[string]bool{}
		for _, l := range aPos.Body {
			inPos[l.Key()] = true
		}
		for _, l := range aQ.Body {
			if l.Negated {
				continue
			}
			if !inPos[l.Key()] {
				t.Fatalf("Proposition 9 violated: %s in ans(Q) but not in ans(Q⁺)\nQ = %s\nans(Q) = %s\nans(Q⁺) = %s",
					l, q, aQ, aPos)
			}
		}
	}
}

// Monotonicity of answerability in the pattern set: adding patterns can
// only grow ans(Q).
func TestAnswerableMonotoneInPatterns(t *testing.T) {
	g := workload.New(72)
	s := g.Schema(4, 1, 2)
	cfg := workload.QueryConfig{PosLits: 4, NegLits: 1, VarPool: 5, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	small := g.Patterns(s, 0.7, 1)
	big := small.Clone()
	for _, r := range s.Relations {
		_ = big.Add(r.Name, access.AllOutputPattern(r.Arity))
	}
	for i := 0; i < 150; i++ {
		q := g.CQ(s, cfg)
		if !containment.Satisfiable(q) {
			continue
		}
		aSmall := AnswerablePart(q, small)
		aBig := AnswerablePart(q, big)
		inBig := map[string]bool{}
		for _, l := range aBig.Body {
			inBig[l.Key()] = true
		}
		for _, l := range aSmall.Body {
			if !inBig[l.Key()] {
				t.Fatalf("answerability not monotone: %s answerable under fewer patterns only\nQ = %s", l, q)
			}
		}
	}
}

// The reorder of an orderable query is equivalent to the original.
func TestReorderPreservesEquivalence(t *testing.T) {
	q := cq(t, `Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
	ps := pats(t, `B^ioo B^oio C^oo L^o`)
	r, ok := Reorder(q, ps)
	if !ok {
		t.Fatal("Example 1 must be orderable")
	}
	if !containment.Equivalent(logic.AsUnion(q), logic.AsUnion(r)) {
		t.Errorf("reordering must preserve equivalence:\n%s\n%s", q, r)
	}
}

func TestExecutionOrder(t *testing.T) {
	q := cq(t, `Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
	ps := pats(t, `B^ioo B^oio C^oo L^o`)
	if _, err := ExecutionOrder(q, ps); err == nil {
		t.Error("Example 1 as written must have no execution order")
	}
	r, _ := Reorder(q, ps)
	steps, err := ExecutionOrder(r, ps)
	if err != nil {
		t.Fatalf("ExecutionOrder(reordered) error: %v", err)
	}
	if len(steps) != 3 || steps[0].Literal.Atom.Pred != "C" {
		t.Errorf("steps = %v", steps)
	}
	if _, err := ExecutionOrder(logic.FalseQuery("Q", nil), ps); err != nil {
		t.Errorf("false query must have a (trivial) execution order: %v", err)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictUnderEqualsOver:    "underestimate equals overestimate",
		VerdictNullInOverestimate: "null in overestimate",
		VerdictContainment:        "containment test ans(Q) ⊑ Q",
	} {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q", v, v.String())
		}
	}
}

func TestPlanStarString(t *testing.T) {
	u := ucq(t, "Q(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).")
	ps := pats(t, `S^o R^oo B^oi T^oo`)
	s := ComputePlans(u, ps).String()
	for _, want := range []string{"underestimate", "overestimate", "T(x, y)", "null"} {
		if !containsStr(s, want) {
			t.Errorf("PlanStar.String() missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
