package core

import (
	"testing"

	"repro/internal/containment"
	"repro/internal/logic"
)

func TestOptimizeOrderFiltersFirst(t *testing.T) {
	// ANSWERABLE discovers R1, R2, not L in one pass; the optimizer must
	// place the filter right after its variables are bound.
	q := cq(t, `Q(x, y) :- R1(x, y), R2(y, z), not L(x).`)
	ps := pats(t, `R1^oo R2^io L^i`)

	a := AnswerablePart(q, ps)
	if got := a.Body[2].Atom.Pred; got != "L" {
		t.Fatalf("ANSWERABLE order unexpectedly optimal: %s", a)
	}
	opt, ok := OptimizeOrder(q, ps)
	if !ok {
		t.Fatal("query is orderable")
	}
	if got := opt.Body[1].String(); got != "not L(x)" {
		t.Errorf("optimizer must schedule the filter second, got %s", opt)
	}
	if !containment.Equivalent(logic.AsUnion(q), logic.AsUnion(opt)) {
		t.Error("optimization must preserve equivalence")
	}
}

func TestOptimizeOrderBoundIsEasier(t *testing.T) {
	// After F binds x, the optimizer prefers G(x) (fully bound) over
	// H(x, w) (introduces w).
	q := cq(t, `Q(x) :- F(x), H(x, w), G(x).`)
	ps := pats(t, `F^o H^io G^i`)
	opt, ok := OptimizeOrder(q, ps)
	if !ok {
		t.Fatal("orderable")
	}
	if opt.Body[1].Atom.Pred != "G" {
		t.Errorf("want G scheduled before H, got %s", opt)
	}
}

func TestOptimizeOrderNotOrderable(t *testing.T) {
	q := cq(t, `Q(x) :- F(x), B(y).`)
	ps := pats(t, `F^o B^i`)
	if _, ok := OptimizeOrder(q, ps); ok {
		t.Error("unorderable query must be rejected")
	}
}

func TestOptimizeOrderSpecialCases(t *testing.T) {
	ps := pats(t, `R^o`)
	f := logic.FalseQuery("Q", nil)
	if got, ok := OptimizeOrder(f, ps); !ok || !got.False {
		t.Error("false must pass through")
	}
	unsat := cq(t, `Q(x) :- R(x), not R(x).`)
	if got, ok := OptimizeOrder(unsat, ps); !ok || !got.False {
		t.Errorf("unsatisfiable must become false, got %v %v", got, ok)
	}
	u := logic.Union(cq(t, `Q(x) :- R(x).`))
	if got, ok := OptimizeOrderUCQ(u, ps); !ok || len(got.Rules) != 1 {
		t.Errorf("union optimization failed: %v %v", got, ok)
	}
}

// The optimized order is always executable and equivalent on random
// orderable queries.
func TestOptimizeOrderAlwaysExecutable(t *testing.T) {
	qs := []string{
		`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`,
		`Q(x) :- F(x), B(x), B(y), F(z).`,
		`Q(x, y) :- R1(x, y), R2(y, z), not L(x).`,
	}
	pss := []string{
		`B^ioo B^oio C^oo L^o`,
		`F^o B^i`,
		`R1^oo R2^io L^i`,
	}
	for i := range qs {
		q := cq(t, qs[i])
		ps := pats(t, pss[i])
		opt, ok := OptimizeOrder(q, ps)
		if !ok {
			if Orderable(q, ps) {
				t.Errorf("optimizer rejected an orderable query: %s", q)
			}
			continue
		}
		if _, err := ExecutionOrder(opt, ps); err != nil {
			t.Errorf("optimized order not executable: %v", err)
		}
		if !containment.Equivalent(logic.AsUnion(q), logic.AsUnion(opt)) {
			t.Errorf("optimization changed meaning: %s vs %s", q, opt)
		}
	}
}
