package core

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/logic"
)

// Verdict says how FEASIBLE reached its answer, in increasing order of
// cost. The first two are decided by the quadratic-time PLAN* output
// alone; only the last requires the Π₂ᴾ-complete containment check.
type Verdict int

const (
	// VerdictUnderEqualsOver: Qᵘ = Qᵒ, so Q is orderable and hence
	// feasible (cheap positive certificate).
	VerdictUnderEqualsOver Verdict = iota
	// VerdictNullInOverestimate: the overestimate binds a head variable
	// to null, so ans(Q) is unsafe and Q cannot be feasible (cheap
	// negative certificate; justified by Theorem 16).
	VerdictNullInOverestimate
	// VerdictContainment: feasibility was decided by the containment
	// check ans(Q) ⊑ Q (Corollary 17).
	VerdictContainment
)

func (v Verdict) String() string {
	switch v {
	case VerdictUnderEqualsOver:
		return "underestimate equals overestimate"
	case VerdictNullInOverestimate:
		return "null in overestimate"
	case VerdictContainment:
		return "containment test ans(Q) ⊑ Q"
	}
	return "unknown"
}

// FeasibleResult is the outcome of the FEASIBLE algorithm with its
// explanation and the work accounting of the containment checker (zero
// when a fast path decided).
type FeasibleResult struct {
	Feasible bool
	Verdict  Verdict
	Plans    PlanStar
	// Nodes is the number of containment subproblems examined (0 when a
	// fast path decided feasibility).
	Nodes int
}

func (r FeasibleResult) String() string {
	status := "infeasible"
	if r.Feasible {
		status = "feasible"
	}
	return fmt.Sprintf("%s (by %s)", status, r.Verdict)
}

// Feasible implements algorithm FEASIBLE (Figure 3 of the paper): it runs
// PLAN*, returns true if Qᵘ = Qᵒ, false if the overestimate contains a
// null, and otherwise decides by the containment test Qᵒ ⊑ Q (at that
// point Qᵒ is exactly ans(Q), and by Corollary 17 Q is feasible iff
// ans(Q) ⊑ Q). Deciding feasibility of UCQ¬ queries is Π₂ᴾ-complete
// (Corollary 19), and all the cost is in the containment check.
func Feasible(u logic.UCQ, ps *access.Set) FeasibleResult {
	plans := ComputePlans(u, ps)
	if plans.UnderEqualsOver() {
		return FeasibleResult{Feasible: true, Verdict: VerdictUnderEqualsOver, Plans: plans}
	}
	if plans.HasNull() {
		return FeasibleResult{Feasible: false, Verdict: VerdictNullInOverestimate, Plans: plans}
	}
	checker := containment.NewChecker(u)
	contained := true
	for _, r := range plans.Over.Rules {
		if !checker.Contains(r) {
			contained = false
			break
		}
	}
	return FeasibleResult{
		Feasible: contained,
		Verdict:  VerdictContainment,
		Plans:    plans,
		Nodes:    checker.Nodes,
	}
}

// FeasibleCQ is Feasible on a single CQ¬ query.
func FeasibleCQ(q logic.CQ, ps *access.Set) FeasibleResult {
	return Feasible(logic.AsUnion(q), ps)
}

// Explanation augments a FEASIBLE result with checkable evidence: when
// feasibility was decided by the containment test, Witnesses holds one
// containment witness per overestimate rule (ans(Q) ⊑ Q), each
// re-verifiable with containment.Checker.Verify.
type Explanation struct {
	Result FeasibleResult
	// Witnesses[i] justifies containment of the i-th overestimate rule
	// in Q; nil (and empty) for fast-path verdicts.
	Witnesses []*containment.Witness
}

// ExplainFeasible is Feasible with witness construction for the
// containment path, so "why is this feasible?" has an auditable answer.
func ExplainFeasible(u logic.UCQ, ps *access.Set) Explanation {
	plans := ComputePlans(u, ps)
	if plans.UnderEqualsOver() {
		return Explanation{Result: FeasibleResult{Feasible: true, Verdict: VerdictUnderEqualsOver, Plans: plans}}
	}
	if plans.HasNull() {
		return Explanation{Result: FeasibleResult{Feasible: false, Verdict: VerdictNullInOverestimate, Plans: plans}}
	}
	checker := containment.NewChecker(u)
	var witnesses []*containment.Witness
	contained := true
	for _, r := range plans.Over.Rules {
		w, ok := checker.Explain(r)
		if !ok {
			contained = false
			witnesses = nil
			break
		}
		witnesses = append(witnesses, w)
	}
	return Explanation{
		Result: FeasibleResult{
			Feasible: contained,
			Verdict:  VerdictContainment,
			Plans:    plans,
			Nodes:    checker.Nodes,
		},
		Witnesses: witnesses,
	}
}

// FeasibleLimited is Feasible with a bound on the containment search
// (the feasibility problem is Π₂ᴾ-complete, so adversarial inputs can be
// astronomically expensive). It returns containment.ErrBudget when the
// budget is exhausted before the test concludes; the fast paths of
// FEASIBLE are unaffected by the budget.
func FeasibleLimited(u logic.UCQ, ps *access.Set, maxNodes int) (FeasibleResult, error) {
	plans := ComputePlans(u, ps)
	if plans.UnderEqualsOver() {
		return FeasibleResult{Feasible: true, Verdict: VerdictUnderEqualsOver, Plans: plans}, nil
	}
	if plans.HasNull() {
		return FeasibleResult{Feasible: false, Verdict: VerdictNullInOverestimate, Plans: plans}, nil
	}
	checker := containment.NewChecker(u)
	contained := true
	for _, r := range plans.Over.Rules {
		ok, err := checker.ContainsLimited(r, maxNodes-checker.Nodes)
		if err != nil {
			return FeasibleResult{Verdict: VerdictContainment, Plans: plans, Nodes: checker.Nodes}, err
		}
		if !ok {
			contained = false
			break
		}
	}
	return FeasibleResult{
		Feasible: contained,
		Verdict:  VerdictContainment,
		Plans:    plans,
		Nodes:    checker.Nodes,
	}, nil
}
