// Package core implements the paper's primary contribution: the four
// algorithms of Nash & Ludäscher (EDBT 2004) for processing unions of
// conjunctive queries with negation under limited access patterns —
// ANSWERABLE (Figure 1), PLAN* (Figure 2), FEASIBLE (Figure 3), and the
// compile-time side of ANSWER* (Figure 4; its runtime side lives in
// internal/engine, which evaluates the plans produced here).
package core

import (
	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/logic"
)

// AnswerablePart computes ans(Q) for a CQ¬ query (Definition 7 and
// Figure 1 of the paper): the literals of Q that are Q-answerable, in the
// order the ANSWERABLE algorithm adds them. If Q is unsatisfiable the
// result is the query false. The head of Q is preserved; the result may
// be unsafe (a head variable may not occur in it), which PLAN* later
// turns into a null binding.
//
// The algorithm keeps a set B of bound variables and an executable
// sub-plan A, and repeatedly scans the body: a literal is added when all
// its variables are bound, or when it is positive and some access pattern
// has all its input-slot variables bound (constants are always bound).
// It runs in O(k²) literal scans for a body of k literals.
func AnswerablePart(q logic.CQ, ps *access.Set) logic.CQ {
	if !containment.Satisfiable(q) {
		return logic.FalseQuery(q.HeadPred, q.HeadArgs)
	}
	return answerableLiterals(q, ps)
}

// answerableLiterals runs the loop of Figure 1 without the
// unsatisfiability short-circuit, returning the query of Q-answerable
// literals in adoption order. Orderable needs this raw form because
// orderability (Definition 4) is purely syntactic.
func answerableLiterals(q logic.CQ, ps *access.Set) logic.CQ {
	out := logic.CQ{HeadPred: q.HeadPred, HeadArgs: cloneTerms(q.HeadArgs)}
	inA := make([]bool, len(q.Body))
	bound := map[string]bool{}
	for {
		done := true
		for i, l := range q.Body {
			if inA[i] {
				continue
			}
			if answerableNow(l, ps, bound) {
				inA[i] = true
				out.Body = append(out.Body, l.Clone())
				for _, v := range l.Vars() {
					bound[v.Name] = true
				}
				done = false
			}
		}
		if done {
			return out
		}
	}
}

// answerableNow reports whether literal l can be executed given the bound
// variables: all variables bound (any literal, provided the source is
// callable at all), or positive with some pattern whose input slots are
// covered.
func answerableNow(l logic.Literal, ps *access.Set, bound map[string]bool) bool {
	if !l.Negated {
		_, ok := ps.Callable(l.Atom, bound)
		return ok
	}
	for _, v := range l.Vars() {
		if !bound[v.Name] {
			return false
		}
	}
	// A negated filter still needs a callable source of the right arity.
	for _, p := range ps.Patterns(l.Atom.Pred) {
		if p.Arity() == l.Atom.Arity() {
			return true
		}
	}
	return false
}

func cloneTerms(ts []logic.Term) []logic.Term {
	out := make([]logic.Term, len(ts))
	copy(out, ts)
	return out
}

// AnswerableUCQ computes ans(Q) rule-wise for a UCQ¬ query
// (Definition 7: ans(Q₁ ∨ … ∨ Qₖ) = ans(Q₁) ∨ … ∨ ans(Qₖ)).
func AnswerableUCQ(u logic.UCQ, ps *access.Set) logic.UCQ {
	rules := make([]logic.CQ, len(u.Rules))
	for i, r := range u.Rules {
		rules[i] = AnswerablePart(r, ps)
	}
	return logic.UCQ{Rules: rules}
}

// Orderable reports whether a CQ¬ query is orderable (Definition 4): some
// permutation of its literals is executable. By Proposition 1 this holds
// iff every literal of Q is Q-answerable; by Proposition 2 / Corollary 3
// the check is quadratic time. The check is purely syntactic, so it does
// not special-case unsatisfiable bodies.
func Orderable(q logic.CQ, ps *access.Set) bool {
	if q.False {
		return true // false is vacuously executable
	}
	if len(q.Body) == 0 {
		return false // true is not executable in any order
	}
	a := answerableLiterals(q, ps)
	return len(a.Body) == len(q.Body)
}

// OrderableUCQ reports whether every rule of u is orderable.
func OrderableUCQ(u logic.UCQ, ps *access.Set) bool {
	for _, r := range u.Rules {
		if !Orderable(r, ps) {
			return false
		}
	}
	return true
}

// Executable reports whether the query is executable as written
// (Definition 3): its literal order admits adornments left to right.
func Executable(u logic.UCQ, ps *access.Set) bool {
	return access.ExecutableUCQ(u, ps)
}

// Reorder returns an executable reordering of q (the order chosen by
// ANSWERABLE) if q is orderable, or q unchanged and false otherwise.
func Reorder(q logic.CQ, ps *access.Set) (logic.CQ, bool) {
	if q.False {
		return q.Clone(), true
	}
	if !containment.Satisfiable(q) {
		return logic.FalseQuery(q.HeadPred, q.HeadArgs), true
	}
	a := AnswerablePart(q, ps)
	if len(a.Body) != len(q.Body) {
		return q.Clone(), false
	}
	return a, true
}

// ReorderUCQ reorders every rule, reporting whether all are orderable.
func ReorderUCQ(u logic.UCQ, ps *access.Set) (logic.UCQ, bool) {
	rules := make([]logic.CQ, len(u.Rules))
	ok := true
	for i, r := range u.Rules {
		var ri bool
		rules[i], ri = Reorder(r, ps)
		ok = ok && ri
	}
	return logic.UCQ{Rules: rules}, ok
}
