package core

import (
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/logic"
)

// RuleAnalysis is the per-rule outcome of PLAN* (Figure 2 of the paper).
type RuleAnalysis struct {
	// Rule is the original CQ¬ rule Qᵢ.
	Rule logic.CQ
	// Ans is ans(Qᵢ): the answerable part Aᵢ in executable order
	// (false when Qᵢ is unsatisfiable). Its head is the original head,
	// so it may be unsafe; see Over for the null-patched version.
	Ans logic.CQ
	// Unanswerable is Uᵢ = Qᵢ \ Aᵢ, the literals no plan can execute.
	Unanswerable []logic.Literal
	// Under is Qᵢᵘ: Aᵢ when Uᵢ is empty, otherwise false
	// ("dismiss Qᵢ altogether for the underestimate").
	Under logic.CQ
	// Over is Qᵢᵒ: Aᵢ with head variables that do not occur in Aᵢ
	// replaced by null ("benefit of the doubt" for Uᵢ); false when Qᵢ is
	// unsatisfiable.
	Over logic.CQ
}

// Complete reports whether the rule was fully answerable (Uᵢ empty).
func (ra RuleAnalysis) Complete() bool { return len(ra.Unanswerable) == 0 }

// PlanStar is the result of the PLAN* algorithm on a UCQ¬ query: the
// underestimate plan Qᵘ and overestimate plan Qᵒ, with per-rule detail.
// Both plans are executable: Qᵘ ⊑ Q ⊑ Qᵒ (the latter up to the careful
// interpretation of null tuples described in Section 4.2 of the paper).
type PlanStar struct {
	Query logic.UCQ
	Rules []RuleAnalysis
	// Under is Qᵘ with false rules dropped (an empty union is the query
	// false, which returns no tuples).
	Under logic.UCQ
	// Over is Qᵒ with false rules dropped. Rules may carry null head
	// arguments.
	Over logic.UCQ
}

// UnderEqualsOver reports whether Qᵘ = Qᵒ, rule by rule, which is the
// fast feasibility certificate of FEASIBLE (Figure 3): it holds exactly
// when every satisfiable rule was fully answerable.
func (p PlanStar) UnderEqualsOver() bool {
	for _, ra := range p.Rules {
		if !ra.Under.Equal(ra.Over) {
			return false
		}
	}
	return true
}

// HasNull reports whether the overestimate contains a null head binding.
func (p PlanStar) HasNull() bool { return p.Over.HasNull() }

// String renders the two plans for human consumption.
func (p PlanStar) String() string {
	var b strings.Builder
	b.WriteString("underestimate Q^u:\n")
	if len(p.Under.Rules) == 0 {
		b.WriteString("  (false)\n")
	}
	for _, r := range p.Under.Rules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	b.WriteString("overestimate Q^o:\n")
	if len(p.Over.Rules) == 0 {
		b.WriteString("  (false)\n")
	}
	for _, r := range p.Over.Rules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ComputePlans runs PLAN* (Figure 2): for every rule Qᵢ it computes the
// answerable part Aᵢ and unanswerable part Uᵢ, the underestimate rule
// (Aᵢ if Uᵢ = ∅, else false) and the overestimate rule (Aᵢ with missing
// head variables bound to null). It runs in quadratic time.
func ComputePlans(u logic.UCQ, ps *access.Set) PlanStar {
	out := PlanStar{Query: u.Clone(), Rules: make([]RuleAnalysis, len(u.Rules))}
	for i, q := range u.Rules {
		out.Rules[i] = analyzeRule(q, ps)
	}
	var under, over []logic.CQ
	for _, ra := range out.Rules {
		if !ra.Under.False {
			under = append(under, ra.Under.Clone())
		}
		if !ra.Over.False {
			over = append(over, ra.Over.Clone())
		}
	}
	out.Under = logic.UCQ{Rules: under}
	out.Over = logic.UCQ{Rules: over}
	return out
}

func analyzeRule(q logic.CQ, ps *access.Set) RuleAnalysis {
	ra := RuleAnalysis{Rule: q.Clone(), Ans: AnswerablePart(q, ps)}
	if ra.Ans.False {
		// Unsatisfiable rule: both estimates are false.
		ra.Under = logic.FalseQuery(q.HeadPred, q.HeadArgs)
		ra.Over = logic.FalseQuery(q.HeadPred, q.HeadArgs)
		return ra
	}
	inAns := map[string]bool{}
	for _, l := range ra.Ans.Body {
		inAns[l.Key()] = true
	}
	for _, l := range q.Body {
		if !inAns[l.Key()] {
			ra.Unanswerable = append(ra.Unanswerable, l.Clone())
		}
	}
	if len(ra.Unanswerable) == 0 {
		ra.Under = ra.Ans.Clone()
	} else {
		ra.Under = logic.FalseQuery(q.HeadPred, q.HeadArgs)
	}
	ra.Over = overestimateRule(ra.Ans)
	return ra
}

// overestimateRule returns Aᵢ with head variables not occurring in the
// answerable body replaced by null (Figure 2's "x := null" step).
func overestimateRule(ans logic.CQ) logic.CQ {
	bodyVars := map[string]bool{}
	for _, l := range ans.Body {
		for _, v := range l.Vars() {
			bodyVars[v.Name] = true
		}
	}
	out := ans.Clone()
	for j, t := range out.HeadArgs {
		if t.IsVar() && !bodyVars[t.Name] {
			out.HeadArgs[j] = logic.Null
		}
	}
	return out
}

// ExecutionOrder returns the adorned execution steps for an executable
// rule (one access pattern chosen per literal), or an error if the rule
// is not executable as written. PLAN* emits rules in executable order, so
// this succeeds on every rule of Under and Over.
func ExecutionOrder(q logic.CQ, ps *access.Set) ([]access.AdornedLiteral, error) {
	if q.False {
		return nil, nil
	}
	steps, ok := access.AdornInOrder(q.Body, ps)
	if !ok {
		return nil, fmt.Errorf("core: rule is not executable as written: %s", q)
	}
	return steps, nil
}
