package core

import (
	"math"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/logic"
)

// Stats carries the per-relation cardinality estimates the cost-based
// order search consumes. DistinctPerColumn approximates the number of
// distinct values per column (used as the reduction factor of a bound
// attribute); when a relation is missing, defaults are assumed.
type Stats struct {
	// Cardinality is the estimated number of tuples per relation.
	Cardinality map[string]float64
	// DistinctPerColumn estimates distinct values per column per
	// relation; a bound column divides the estimated output by this.
	DistinctPerColumn map[string]float64
}

// DefaultCard is assumed for relations absent from Stats.
const (
	DefaultCard     = 1000.0
	DefaultDistinct = 100.0
)

func (s Stats) card(rel string) float64 {
	if s.Cardinality != nil {
		if v, ok := s.Cardinality[rel]; ok && v > 0 {
			return v
		}
	}
	return DefaultCard
}

func (s Stats) distinct(rel string) float64 {
	if s.DistinctPerColumn != nil {
		if v, ok := s.DistinctPerColumn[rel]; ok && v > 1 {
			return v
		}
	}
	return DefaultDistinct
}

// CostOrder returns an executable order of q's body minimizing the
// estimated number of source calls under a textbook independence cost
// model:
//
//   - executing a positive literal issues one call per current binding
//     and multiplies the binding count by card(R) / distinct(R)^b,
//     where b is the number of bound argument positions;
//   - executing a negated literal issues one call per binding and keeps
//     a fraction that the model fixes at 1/2;
//   - total cost = Σ calls over the steps.
//
// For bodies of at most ExhaustiveLimit literals the search is exact
// (branch and bound over executable permutations); larger bodies fall
// back to the greedy OptimizeOrder. ok is false when q is not orderable.
func CostOrder(q logic.CQ, ps *access.Set, st Stats) (logic.CQ, bool) {
	if q.False {
		return q.Clone(), true
	}
	if !containment.Satisfiable(q) {
		return logic.FalseQuery(q.HeadPred, q.HeadArgs), true
	}
	if len(q.Body) > ExhaustiveLimit {
		return OptimizeOrder(q, ps)
	}
	n := len(q.Body)
	bestCost := math.Inf(1)
	var bestOrder []int
	order := make([]int, 0, n)
	taken := make([]bool, n)

	var rec func(bound map[string]bool, bindings, cost float64)
	rec = func(bound map[string]bool, bindings, cost float64) {
		if cost >= bestCost {
			return // branch and bound
		}
		if len(order) == n {
			bestCost = cost
			bestOrder = append([]int(nil), order...)
			return
		}
		for i, l := range q.Body {
			if taken[i] || !answerableNow(l, ps, bound) {
				continue
			}
			newBound := bound
			added := []string{}
			for _, v := range l.Vars() {
				if !bound[v.Name] {
					added = append(added, v.Name)
				}
			}
			if len(added) > 0 {
				newBound = make(map[string]bool, len(bound)+len(added))
				for k := range bound {
					newBound[k] = true
				}
				for _, v := range added {
					newBound[v] = true
				}
			}
			nextBindings := stepOutput(l, bound, bindings, st)
			taken[i] = true
			order = append(order, i)
			rec(newBound, nextBindings, cost+bindings)
			order = order[:len(order)-1]
			taken[i] = false
		}
	}
	rec(map[string]bool{}, 1, 0)
	if bestOrder == nil {
		return q.Clone(), false
	}
	out := logic.CQ{HeadPred: q.HeadPred, HeadArgs: cloneTerms(q.HeadArgs)}
	for _, i := range bestOrder {
		out.Body = append(out.Body, q.Body[i].Clone())
	}
	return out, true
}

// ExhaustiveLimit is the body size up to which CostOrder searches all
// executable permutations.
const ExhaustiveLimit = 9

// stepOutput estimates the binding count after executing literal l.
func stepOutput(l logic.Literal, bound map[string]bool, bindings float64, st Stats) float64 {
	if l.Negated {
		return bindings / 2
	}
	rel := l.Atom.Pred
	out := bindings * st.card(rel)
	for _, t := range l.Atom.Args {
		if t.IsConst() || (t.IsVar() && bound[t.Name]) {
			out /= st.distinct(rel)
		}
	}
	if out < 0 {
		out = 0
	}
	return out
}

// CostOrderUCQ cost-orders every rule, reporting whether all were
// orderable.
func CostOrderUCQ(u logic.UCQ, ps *access.Set, st Stats) (logic.UCQ, bool) {
	rules := make([]logic.CQ, len(u.Rules))
	ok := true
	for i, r := range u.Rules {
		var ri bool
		rules[i], ri = CostOrder(r, ps, st)
		ok = ok && ri
	}
	return logic.UCQ{Rules: rules}, ok
}

// StatsFromCardinalities builds Stats with the given table sizes and a
// distinct-values heuristic of sqrt(cardinality) per column.
func StatsFromCardinalities(cards map[string]int) Stats {
	st := Stats{Cardinality: map[string]float64{}, DistinctPerColumn: map[string]float64{}}
	for rel, n := range cards {
		st.Cardinality[rel] = float64(n)
		d := math.Sqrt(float64(n))
		if d < 2 {
			d = 2
		}
		st.DistinctPerColumn[rel] = d
	}
	return st
}
