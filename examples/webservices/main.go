// Webservices: queries as declarative web-service compositions
// (Section 1 of the paper). Each relation is a metered "service" that
// can only be called with its input-slot arguments; the example composes
// three services, shows how plan order changes the number of remote
// calls, and uses a custom Source to log the call sequence.
package main

import (
	"context"
	"fmt"
	"log"

	ucqn "repro"
)

func main() {
	// Describe the deployment as web service operations (the paper's
	// Section 1 framing) and derive the access patterns from them:
	//   geocode:   city → region
	//   forecast:  region → report
	//   directory: → city
	//   hasAlert:  region → (membership check)
	reg := ucqn.NewOperationRegistry().
		MustRegister(ucqn.Operation{Name: "geocode", Relation: "GeoCode",
			Attributes: []string{"city", "region"}, Inputs: []string{"city"}}).
		MustRegister(ucqn.Operation{Name: "forecast", Relation: "Weather",
			Attributes: []string{"region", "report"}, Inputs: []string{"region"}}).
		MustRegister(ucqn.Operation{Name: "directory", Relation: "Cities",
			Attributes: []string{"city"}}).
		MustRegister(ucqn.Operation{Name: "hasAlert", Relation: "Alerts",
			Attributes: []string{"region"}, Inputs: []string{"region"}})
	for _, op := range reg.Operations("") {
		fmt.Println("service:", op.Signature())
	}
	ps, err := reg.PatternSet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived patterns:", ps)
	fmt.Println()

	in := ucqn.NewInstance()
	cities := []string{"paris", "lyon", "nice", "lille", "brest"}
	regions := map[string]string{
		"paris": "idf", "lyon": "ara", "nice": "paca", "lille": "hdf", "brest": "bre",
	}
	for _, c := range cities {
		in.MustAdd("Cities", c)
		in.MustAdd("GeoCode", c, regions[c])
	}
	for _, r := range []string{"idf", "ara", "paca", "hdf", "bre"} {
		in.MustAdd("Weather", r, "sunny-"+r)
	}
	in.MustAdd("Alerts", "paca")
	in.MustAdd("Alerts", "hdf")

	// Composition: forecasts for all cities whose region has no alert.
	q := ucqn.MustParseQuery(`Q(c, f) :- Cities(c), GeoCode(c, r), Weather(r, f), not Alerts(r).`)

	fmt.Println("composition:", q)
	res := ucqn.Feasible(q, ps)
	fmt.Printf("feasible: %v (%s)\n\n", res.Feasible, res.Verdict)

	cat, err := in.Catalog(ps)
	if err != nil {
		log.Fatal(err)
	}
	// Log the call sequence of the first few calls via the OnCall hook.
	logged := 0
	for _, name := range cat.Names() {
		if t, ok := cat.Source(name).(*ucqn.Table); ok {
			n := name
			t.OnCall = func(p ucqn.Pattern, inputs []string) {
				if logged < 8 {
					fmt.Printf("  call %s^%s%v\n", n, p, inputs)
					logged++
				}
			}
		}
	}

	fmt.Println("call trace (first 8):")
	eres, err := ucqn.Exec(context.Background(), q, ps, cat, ucqn.WithProfile())
	if err != nil {
		log.Fatal(err)
	}
	answers, err := eres.Rel()
	if err != nil {
		log.Fatal(err)
	}
	prof, _ := eres.Profile()
	st := cat.TotalStats()
	fmt.Printf("\nanswers (%d):\n%s\n", answers.Len(), answers)
	fmt.Printf("\ntotal traffic: %d calls, %d tuples\n", st.Calls, st.TuplesReturned)
	fmt.Printf("\nexecution profile:\n%s\n", prof)

	// Per-service accounting: the negated Alerts filter costs one call
	// per surviving binding.
	fmt.Println("\nper-service traffic:")
	for _, name := range cat.Names() {
		if t, ok := cat.Source(name).(*ucqn.Table); ok {
			s := t.StatsSnapshot()
			fmt.Printf("  %-8s %3d calls %3d tuples\n", name, s.Calls, s.TuplesReturned)
		}
	}

	// An infeasible composition: forecasts by region without any way to
	// enumerate regions.
	ps2 := ucqn.MustParsePatterns(`Weather^io Alerts^i`)
	q2 := ucqn.MustParseQuery(`Q(r, f) :- Weather(r, f), not Alerts(r).`)
	res2 := ucqn.Feasible(q2, ps2)
	fmt.Printf("\nwithout a directory service, %s\nis feasible: %v (%s)\n", q2, res2.Feasible, res2.Verdict)
}
