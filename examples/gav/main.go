// GAV: the full mediator pipeline of the paper's Section 6 — a client
// query against global-as-view definitions is unfolded into a UCQ¬ plan
// over limited-access sources, semantically optimized under integrity
// constraints (Example 6), planned, and answered with completeness
// reporting.
//
// Scenario (after the BIRN neuroscience mediator): a global view
// Subject(id, species) integrates two labs' sources; Healthy(id) is a
// global view over a screening source; the client asks for subjects that
// are not known to be healthy.
package main

import (
	"context"
	"fmt"
	"log"

	ucqn "repro"
)

func main() {
	// Source schema and access patterns:
	//   LabA^oo(id, species)        scannable
	//   LabB^oo(id, species)        scannable
	//   Screen^i(id)                membership check only
	//   Consent^io(id, status)      lookup by subject
	ps := ucqn.MustParsePatterns(`LabA^oo LabB^oo Screen^i Consent^io`)

	// Global-as-view definitions.
	views := ucqn.NewViews()
	if err := views.Add(ucqn.MustParseQuery(`
		Subject(id, sp) :- LabA(id, sp).
		Subject(id, sp) :- LabB(id, sp).
	`)); err != nil {
		log.Fatal(err)
	}
	if err := views.Add(ucqn.MustParseQuery(`Healthy(id) :- Screen(id).`)); err != nil {
		log.Fatal(err)
	}

	// Client query over the global schema.
	q := ucqn.MustParseQuery(`Q(id, sp) :- Subject(id, sp), Consent(id, "yes"), not Healthy(id).`)
	fmt.Println("client query:  ", q)

	unfolded, err := views.Unfold(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unfolded plan:\n%s\n\n", unfolded)

	res := ucqn.Feasible(unfolded, ps)
	fmt.Printf("feasible: %v (%s)\n\n", res.Feasible, res.Verdict)

	// Sources.
	in := ucqn.NewInstance()
	if err := in.ParseInto(`
		LabA("s1", "mouse").
		LabA("s2", "rat").
		LabB("s3", "mouse").
		Screen("s2").
		Consent("s1", "yes").
		Consent("s2", "yes").
		Consent("s3", "no").
	`); err != nil {
		log.Fatal(err)
	}
	cat, err := in.Catalog(ps)
	if err != nil {
		log.Fatal(err)
	}
	starRes, err := ucqn.Exec(context.Background(), unfolded, ps, cat, ucqn.WithAnswerStar())
	if err != nil {
		log.Fatal(err)
	}
	star, _ := starRes.Star()
	fmt.Println(star.Report())

	// Integrity constraints: every consented subject has been screened
	// or not — suppose instead the deployment guarantees every LabB
	// subject is screened: LabB[0] ⊆ Screen[0]. Then the LabB disjunct
	// of the unfolded query (which requires not Screen) is refuted at
	// compile time.
	inds := ucqn.MustParseINDs(`LabB[0] < Screen[0]`)
	fmt.Printf("\nwith constraint %v:\n", []ucqn.IND(inds))
	opt := inds.Optimize(unfolded)
	fmt.Printf("optimized plan (%d of %d rules kept):\n%s\n",
		len(opt.Rules), len(unfolded.Rules), opt)
	res2 := ucqn.Feasible(opt, ps)
	fmt.Printf("optimized feasible: %v (%s)\n", res2.Feasible, res2.Verdict)

	// Traffic comparison: ANSWERABLE order vs the call-minimizing order,
	// with and without source caching.
	fmt.Println("\ntraffic comparison on the unfolded plan:")
	ordered, _ := ucqn.Reorder(unfolded, ps)
	optimized, _ := ucqn.OptimizeOrder(unfolded, ps)
	for _, v := range []struct {
		name string
		q    ucqn.Query
	}{{"ANSWERABLE order", ordered}, {"optimized order", optimized}} {
		cat2, err := in.Catalog(ps)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ucqn.Exec(context.Background(), v.q, ps, cat2); err != nil {
			log.Fatal(err)
		}
		st := cat2.TotalStats()
		fmt.Printf("  %-18s %3d calls %3d tuples\n", v.name, st.Calls, st.TuplesReturned)
	}
}
