// Bookstore: the full compile-time story of the paper on one scenario —
// executable vs orderable vs feasible (Examples 1 and 3), the
// answerable part, query minimization, and what the FEASIBLE algorithm
// does on each query.
package main

import (
	"fmt"
	"log"

	ucqn "repro"
)

func analyze(title, query, patterns string) {
	fmt.Printf("--- %s ---\n", title)
	q, err := ucqn.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := ucqn.ParsePatterns(patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:\n%s\npatterns: %s\n", q, ps)
	fmt.Printf("executable as written: %v\n", ucqn.Executable(q, ps))
	fmt.Printf("orderable:             %v\n", ucqn.Orderable(q, ps))
	res := ucqn.Feasible(q, ps)
	fmt.Printf("feasible:              %v (%s)\n", res.Feasible, res.Verdict)
	fmt.Printf("ans(Q):\n%s\n", ucqn.AnswerablePart(q, ps))
	if ordered, ok := ucqn.Reorder(q, ps); ok {
		fmt.Printf("executable reordering:\n%s\n", ordered)
		for _, r := range ordered.Rules {
			steps, err := ucqn.ExecutionOrder(r, ps)
			if err != nil {
				continue
			}
			fmt.Print("  steps:")
			for _, s := range steps {
				fmt.Printf("  %s", s)
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

func main() {
	// Example 1: orderable, so feasibility is certified without any
	// containment reasoning.
	analyze("Example 1: reordering suffices",
		`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`,
		`B^ioo B^oio C^oo L^o`)

	// Example 3: not orderable (i' and a' can never be bound), yet
	// feasible: the two disjuncts together are equivalent to
	// Q'(a) :- L(i), B(i, a, t).
	analyze("Example 3: feasible but not orderable",
		`Q(a) :- B(i, a, t), L(i), B(i', a', t).
		 Q(a) :- B(i, a, t), L(i), not B(i', a', t).`,
		`B^ioo B^oio L^o`)

	// The equivalent executable query of Example 3, verified.
	u := ucqn.MustParseQuery(`
		Q(a) :- B(i, a, t), L(i), B(i', a', t).
		Q(a) :- B(i, a, t), L(i), not B(i', a', t).
	`)
	qPrime := ucqn.MustParseQuery(`Q(a) :- L(i), B(i, a, t).`)
	fmt.Printf("Example 3 union ≡ Q'(a) :- L(i), B(i, a, t):  %v\n\n", ucqn.Equivalent(u, qPrime))

	// Example 9: minimization view. The core of the query is
	// Q(x) :- F(x), B(x), which is executable; CQstable and FEASIBLE
	// agree.
	q9 := ucqn.MustParseRule(`Q(x) :- F(x), B(x), B(y), F(z).`)
	ps9 := ucqn.MustParsePatterns(`F^o B^i`)
	fmt.Println("--- Example 9: minimization vs answerable part ---")
	fmt.Println("query:   ", q9)
	fmt.Println("minimal: ", ucqn.Minimize(q9))
	stable, err := ucqn.CQStable(q9, ps9)
	if err != nil {
		log.Fatal(err)
	}
	star, err := ucqn.CQStableStar(q9, ps9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CQstable: %v   CQstable*: %v   FEASIBLE: %v\n",
		stable, star, ucqn.Feasible(ucqn.MustParseQuery(`Q(x) :- F(x), B(x), B(y), F(z).`), ps9).Feasible)
}
