// Quickstart: parse a query and its access patterns, test feasibility,
// reorder into an executable plan, and run it against limited-access
// sources. This is Example 1 of Nash & Ludäscher (EDBT 2004): a book
// search that cannot run as written but becomes executable once the
// catalog C is called first.
package main

import (
	"context"
	"fmt"
	"log"

	ucqn "repro"
)

func main() {
	// Books available in store B, listed in catalog C, not in library L.
	q, err := ucqn.ParseQuery(`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
	if err != nil {
		log.Fatal(err)
	}
	// B can be searched by ISBN or by author; C is freely scannable; L
	// is freely scannable.
	ps, err := ucqn.ParsePatterns(`B^ioo B^oio C^oo L^o`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:      ", q)
	fmt.Println("patterns:   ", ps)
	fmt.Println("executable: ", ucqn.Executable(q, ps)) // false: B needs i or a
	fmt.Println("orderable:  ", ucqn.Orderable(q, ps))  // true: call C first

	res := ucqn.Feasible(q, ps)
	fmt.Printf("feasible:    %v (%s)\n", res.Feasible, res.Verdict)

	ordered, _ := ucqn.Reorder(q, ps)
	fmt.Println("plan:       ", ordered)

	// Run the plan against an in-memory "web service" deployment.
	in := ucqn.NewInstance()
	err = in.ParseInto(`
		B("0201", "knuth", "taocp vol 1").
		B("0403", "knuth", "taocp vol 3").
		B("0777", "date",  "db systems").
		C("0201", "knuth").
		C("0777", "date").
		L("0777").
	`)
	if err != nil {
		log.Fatal(err)
	}
	cat, err := in.Catalog(ps)
	if err != nil {
		log.Fatal(err)
	}
	eres, err := ucqn.Exec(context.Background(), ordered, ps, cat)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := eres.Rel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanswers (%d):\n%s\n", answers.Len(), answers)
	st := cat.TotalStats()
	fmt.Printf("source traffic: %d calls, %d tuples transferred\n", st.Calls, st.TuplesReturned)
}
