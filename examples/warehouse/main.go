// Warehouse: a three-level integration hierarchy compiled with the
// nonrecursive Datalog¬ program layer, planned with the cost-based
// optimizer, and executed with per-step profiling — the full pipeline a
// mediator deployment would run.
//
// Levels:
//
//	Stock(sku, site)    :- WarehouseA(sku, site) | WarehouseB(sku, site)
//	Sellable(sku, site) :- Stock(sku, site), Price(sku, p)
//	Order(sku, site)    :- Sellable(sku, site), not Recalled(sku)
package main

import (
	"context"
	"fmt"
	"log"

	ucqn "repro"
)

func main() {
	p := ucqn.NewProgram()
	rules, err := ucqn.ParseRules(`
		Stock(sku, site) :- WarehouseA(sku, site).
		Stock(sku, site) :- WarehouseB(sku, site).
		Sellable(sku, site) :- Stock(sku, site), Price(sku, pr).
		Order(sku, site) :- Sellable(sku, site), not Recalled(sku).
	`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules {
		if err := p.Add(r); err != nil {
			log.Fatal(err)
		}
	}

	compiled, err := p.Compile("Order")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled plan for Order:\n%s\n\n", compiled)

	// Source capabilities: warehouses scannable, Price by sku only,
	// Recalled membership check only.
	ps := ucqn.MustParsePatterns(`WarehouseA^oo WarehouseB^oo Price^io Recalled^i`)
	res := ucqn.Feasible(compiled, ps)
	fmt.Printf("feasible: %v (%s)\n\n", res.Feasible, res.Verdict)

	// Data: warehouse A large, warehouse B small.
	in := ucqn.NewInstance()
	for i := 0; i < 60; i++ {
		in.MustAdd("WarehouseA", fmt.Sprintf("sku%d", i), "berlin")
	}
	for i := 0; i < 5; i++ {
		in.MustAdd("WarehouseB", fmt.Sprintf("sku%d", 100+i), "paris")
	}
	for i := 0; i < 60; i += 2 {
		in.MustAdd("Price", fmt.Sprintf("sku%d", i), fmt.Sprintf("%d.99", i))
	}
	in.MustAdd("Price", "sku100", "9.99")
	in.MustAdd("Recalled", "sku0")
	in.MustAdd("Recalled", "sku100")

	st := ucqn.StatsFromCardinalities(map[string]int{
		"WarehouseA": 60, "WarehouseB": 5, "Price": 31, "Recalled": 2,
	})
	ordered, ok := ucqn.CostOrder(compiled, ps, st)
	if !ok {
		log.Fatal("plan not orderable")
	}
	cat, err := in.Catalog(ps)
	if err != nil {
		log.Fatal(err)
	}
	eres, err := ucqn.Exec(context.Background(), ordered, ps, cat, ucqn.WithProfile())
	if err != nil {
		log.Fatal(err)
	}
	answers, err := eres.Rel()
	if err != nil {
		log.Fatal(err)
	}
	prof, _ := eres.Profile()
	fmt.Printf("orders (%d):\n", answers.Len())
	for i, row := range answers.Sorted() {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", row)
	}
	fmt.Printf("\nexecution profile:\n%s\n", prof)
	total := cat.TotalStats()
	fmt.Printf("\ntotal: %d calls, %d tuples\n", total.Calls, total.TuplesReturned)
}
