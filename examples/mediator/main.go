// Mediator: the runtime story of the paper (Section 4.2) in the style of
// the BIRN mediator that motivated it — an integrated view unfolds into
// a UCQ¬ plan that is *infeasible*, yet ANSWER* can still certify
// complete answers at runtime (Examples 5 and 6), report partial
// completeness (Example 7), and improve underestimates with domain
// enumeration (Example 8).
package main

import (
	"context"
	"fmt"
	"log"

	ucqn "repro"
)

// The integrated view of Example 4: Q(x,y) is answered either by joining
// R with B and filtering through ¬S, or directly from T. B accepts only
// lookups by its second column (B^oi), which no rule can ever bind — the
// plan is infeasible.
const view = `
	Q(x, y) :- not S(z), R(x, z), B(x, y).
	Q(x, y) :- T(x, y).
`

const patterns = `S^o R^oo B^oi T^oo`

func runScenario(name string, load func(*ucqn.Instance)) ucqn.AnswerStar {
	fmt.Printf("--- %s ---\n", name)
	q := ucqn.MustParseQuery(view)
	ps := ucqn.MustParsePatterns(patterns)
	in := ucqn.NewInstance()
	load(in)
	cat, err := in.Catalog(ps)
	if err != nil {
		log.Fatal(err)
	}
	starRes, err := ucqn.Exec(context.Background(), q, ps, cat, ucqn.WithAnswerStar())
	if err != nil {
		log.Fatal(err)
	}
	res, _ := starRes.Star()
	fmt.Println(res.Report())

	// Compare with the (normally unobservable) ground truth.
	naiveRes, err := ucqn.Exec(context.Background(), q, nil, nil, ucqn.WithNaive(in))
	if err != nil {
		log.Fatal(err)
	}
	truth, err := naiveRes.Rel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[ground truth: %d tuples]\n\n", truth.Len())
	return res
}

func main() {
	q := ucqn.MustParseQuery(view)
	ps := ucqn.MustParsePatterns(patterns)
	res := ucqn.Feasible(q, ps)
	fmt.Printf("view feasibility: %v (%s)\n", res.Feasible, res.Verdict)
	fmt.Printf("PLAN* output:\n%s\n\n", res.Plans)

	// Example 6: a foreign key R.z ⊆ S.z makes the dismissed disjunct
	// empty on every instance; ANSWER* detects completeness at runtime
	// even though no static analysis proved it.
	runScenario("foreign key satisfied (Example 6): complete despite infeasibility",
		func(in *ucqn.Instance) {
			in.MustAdd("S", "z1").MustAdd("S", "z2")
			in.MustAdd("R", "x1", "z1").MustAdd("R", "x2", "z2")
			in.MustAdd("B", "x1", "y1")
			in.MustAdd("T", "t1", "t2")
		})

	// Example 7: a dangling R.z value produces the overestimate tuple
	// (x3, null) — "there may be matching B tuples, but the source
	// cannot be asked".
	last := runScenario("dangling reference (Example 7): unknown completeness, null tuple in Δ",
		func(in *ucqn.Instance) {
			in.MustAdd("S", "z1")
			in.MustAdd("R", "x1", "z1")
			in.MustAdd("R", "x3", "z9") // z9 not in S
			in.MustAdd("B", "x3", "y3")
			in.MustAdd("T", "t1", "t2")
		})

	// Example 8: domain enumeration re-admits the dismissed rule by
	// binding y through dom(y), recovering the missing answer (x3, y3)
	// because y3 is reachable... it is not: only values visible through
	// some output slot can enter dom. Add a T tuple mentioning y3 and
	// the improvement finds the answer.
	fmt.Println("--- domain enumeration (Example 8) ---")
	in := ucqn.NewInstance()
	in.MustAdd("S", "z1")
	in.MustAdd("R", "x1", "z1")
	in.MustAdd("R", "x3", "z9")
	in.MustAdd("B", "x3", "y3")
	in.MustAdd("T", "t1", "y3") // y3 is in the reachable domain via T^oo
	cat, err := in.Catalog(ucqn.MustParsePatterns(patterns))
	if err != nil {
		log.Fatal(err)
	}
	ps2 := ucqn.MustParsePatterns(patterns)
	ires, err := ucqn.Exec(context.Background(), q, ps2, cat, ucqn.WithImproveUnder(100000))
	if err != nil {
		log.Fatal(err)
	}
	star, _ := ires.Star()
	fmt.Printf("plain underestimate: %d tuples\n", star.Under.Len())
	improved, err := ires.Rel()
	if err != nil {
		log.Fatal(err)
	}
	rules, dom, _ := ires.Improved()
	fmt.Printf("dom(x) enumerated %d values with %d calls\n", len(dom.Values), dom.Calls)
	for _, r := range rules.Rules {
		fmt.Printf("improved rule: %s\n", r)
	}
	fmt.Printf("improved underestimate: %d tuples\n%s\n", improved.Len(), improved)
	_ = last
}
