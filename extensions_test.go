package ucqn

import (
	"context"
	"errors"
	"testing"
)

func TestViewsUnfoldFacade(t *testing.T) {
	v := NewViews()
	if err := v.Add(MustParseQuery("Subject(id, sp) :- LabA(id, sp).\nSubject(id, sp) :- LabB(id, sp).")); err != nil {
		t.Fatal(err)
	}
	if err := v.Add(MustParseQuery(`Healthy(id) :- Screen(id).`)); err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`Q(id) :- Subject(id, sp), not Healthy(id).`)
	u, err := v.Unfold(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 2 {
		t.Fatalf("unfolded = %s", u)
	}
	ps := MustParsePatterns(`LabA^oo LabB^oo Screen^i`)
	if !Feasible(u, ps).Feasible {
		t.Error("unfolded plan must be feasible")
	}
}

func TestProgramFacade(t *testing.T) {
	p := NewProgram()
	rules, err := ParseRules(`
		Stock(s) :- WA(s).
		Stock(s) :- WB(s).
		Order(s) :- Stock(s), Price(s, pr).
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	compiled, err := p.Compile("Order")
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled.Rules) != 2 {
		t.Fatalf("compiled = %s", compiled)
	}
	ps := MustParsePatterns(`WA^o WB^o Price^io`)
	if !Feasible(compiled, ps).Feasible {
		t.Error("compiled plan must be feasible")
	}
}

func TestFeasibleUnderFacade(t *testing.T) {
	u := MustParseQuery(`
		Q(x, y) :- not T(z), R(x, z), B(x, y).
		Q(x, y) :- W(x, y).
	`)
	ps := MustParsePatterns(`T^o R^oo B^oi W^oo S^o`)
	chain := MustParseINDs(`R[1] < S[0]; S[0] < T[0]`)
	if Feasible(u, ps).Feasible {
		t.Fatal("infeasible without constraints")
	}
	if !FeasibleUnder(u, ps, chain).Feasible {
		t.Error("feasible under the chained dependencies")
	}
}

func TestINDOptimizeFacade(t *testing.T) {
	u := MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := MustParsePatterns(`S^o R^oo B^oi T^oo`)
	inds, err := ParseINDs(`R[1] < S[0]`)
	if err != nil {
		t.Fatal(err)
	}
	if Feasible(u, ps).Feasible {
		t.Fatal("unoptimized query must be infeasible")
	}
	opt := inds.Optimize(u)
	if !Feasible(opt, ps).Feasible {
		t.Error("optimized query must be feasible")
	}
	in := NewInstance().MustAdd("R", "x", "z").MustAdd("S", "z")
	if !inds.Holds(in) {
		t.Error("Holds must see the satisfied dependency")
	}
}

func TestOptimizeOrderFacade(t *testing.T) {
	q := MustParseQuery(`Q(x, y) :- R1(x, w), R2(w, y), not L(x).`)
	ps := MustParsePatterns(`R1^oo R2^io L^i`)
	opt, ok := OptimizeOrder(q, ps)
	if !ok {
		t.Fatal("orderable")
	}
	if got := opt.Rules[0].Body[1].String(); got != "not L(x)" {
		t.Errorf("filter not hoisted: %s", opt)
	}
	if !Equivalent(q, opt) {
		t.Error("optimization must preserve equivalence")
	}
}

func TestAcyclicRuleFacade(t *testing.T) {
	if !AcyclicRule(MustParseRule(`Q(x) :- E(x, y), E(y, z).`)) {
		t.Error("chain is acyclic")
	}
	if AcyclicRule(MustParseRule(`Q(x) :- E(x, y), E(y, z), E(z, x).`)) {
		t.Error("triangle is cyclic")
	}
}

func TestCachedCatalogFacade(t *testing.T) {
	in := NewInstance()
	for i := 0; i < 20; i++ {
		in.MustAdd("R", xval(i), "z0")
	}
	in.MustAdd("T", "z0", "y0")
	ps := MustParsePatterns(`R^oo T^io`)
	base, err := in.Catalog(ps)
	if err != nil {
		t.Fatal(err)
	}
	cat, caches, err := CachedCatalog(base)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`)
	// Within a query the runtime already dedupes the 20 identical T
	// lookups into one call; the cache's job is repeats across queries.
	ans, prof, err := execProfiled(q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 20 {
		t.Errorf("answers = %d, want 20", ans.Len())
	}
	if prof.TotalDeduped() != 19 {
		t.Errorf("deduped = %d, want 19 (20 identical T lookups)", prof.TotalDeduped())
	}
	if ans2, err := execAnswer(q, ps, cat); err != nil || ans2.Len() != 20 {
		t.Fatalf("second run: %v, %d answers", err, ans2.Len())
	}
	totalHits := 0
	for _, c := range caches {
		h, _ := c.HitsMisses()
		totalHits += h
	}
	if totalHits != 2 {
		t.Errorf("cache hits = %d, want 2 (the second run's R scan and T lookup)", totalHits)
	}
	// The wrapped catalog reports the inner tables' real remote traffic:
	// R scanned once, T looked up once, everything else served locally.
	if st := cat.TotalStats(); st.Calls != 2 {
		t.Errorf("wrapped TotalStats.Calls = %d, want 2", st.Calls)
	}
	// The wrapped single source constructor works too.
	single := NewCachedSource(base.Source("T"))
	if _, err := single.Call("io", []string{"z0"}); err != nil {
		t.Fatal(err)
	}
}

func xval(i int) string {
	return string(rune('a' + i%26))
}

func TestRuntimeFacade(t *testing.T) {
	in := NewInstance()
	for i := 0; i < 12; i++ {
		in.MustAdd("R", xval(i), "z"+xval(i%3))
	}
	for i := 0; i < 3; i++ {
		in.MustAdd("T", "z"+xval(i), "y"+xval(i))
	}
	ps := MustParsePatterns(`R^oo T^io`)
	base, err := in.Catalog(ps)
	if err != nil {
		t.Fatal(err)
	}
	// Put a fault injector in front of every source; the runtime's retry
	// policy must absorb the injected failures.
	var flaky []Source
	for _, name := range base.Names() {
		flaky = append(flaky, NewFlakySource(base.Source(name), FlakyConfig{FailFirst: 1}))
	}
	cat, err := NewCatalog(flaky...)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`)

	rt := NewRuntime()
	rt.Retry = RetryPolicy{MaxAttempts: 3}
	ans, err := rt.Answer(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 12 {
		t.Errorf("answers = %d, want 12", ans.Len())
	}
	seq, err := SequentialRuntime().Answer(context.Background(), q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Equal(seq) {
		t.Error("runtime answers must match the sequential baseline")
	}
	// StatsReporter lets the wrapped catalog report inner traffic: the
	// injected failures never reach the tables, so only the 4 successful
	// distinct calls (1 R scan + 3 T lookups) are metered.
	if st := cat.TotalStats(); st.Calls != 4 {
		t.Errorf("wrapped TotalStats.Calls = %d, want 4", st.Calls)
	}
	var _ StatsReporter = NewFlakySource(base.Source("R"), FlakyConfig{})
	if err := Transient(errEnv); !IsTransient(err) || IsTransient(errEnv) {
		t.Error("Transient/IsTransient classification broken")
	}
}

var errEnv = errors.New("env down")
