// Command plan runs PLAN* (Figure 2 of Nash & Ludäscher, EDBT 2004) and
// prints the underestimate plan Qᵘ, the overestimate plan Qᵒ, and the
// per-rule decomposition into answerable and unanswerable parts.
//
// Usage:
//
//	plan -patterns 'S^o R^oo B^oi T^oo' [-query file.dlog]
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Plan(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
