// Command ucqnload drives closed-loop load against a ucqnd server and
// writes the E24 bench report (p50/p99/QPS, shed/degraded counts, and
// a soundness verdict: every answer row checked against the fixture's
// naive ground truth).
//
// Point it at a running daemon:
//
//	$ ucqnload -addr http://127.0.0.1:8099 -users 16 -duration 10s
//
// or let it boot an in-process server over a real TCP listener for a
// self-contained smoke run (what `make serve-smoke` does):
//
//	$ ucqnload -boot -users 8 -duration 3s -out BENCH_E24.json
//
// The report is schema-checked before it is written; a non-sound run,
// a dirty shutdown, or any transport error exits non-zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	ucqn "repro"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ucqnload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8099", "base URL of a running ucqnd")
	boot := flag.Bool("boot", false, "boot an in-process server on a loopback port instead of dialing -addr")
	tenants := flag.Int("tenants", 3, "number of fixture tenants (must match the server's)")
	users := flag.Int("users", 8, "closed-loop client goroutines")
	duration := flag.Duration("duration", 3*time.Second, "load duration")
	seed := flag.Int64("seed", 1, "query-mix seed")
	zipfS := flag.Float64("zipf", 1.2, "Zipf skew of the query mix (>1)")
	out := flag.String("out", "BENCH_E24.json", "bench report path ('' = stdout only)")
	concurrency := flag.Int("concurrency", 0, "boot mode: max concurrent executions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "boot mode: admission queue depth (0 = 4x concurrency)")
	queueWait := flag.Duration("queue-wait", 0, "boot mode: max slot wait (0 = 25ms)")
	quota := flag.Int("quota", 0, "boot mode: per-request call quota (0 = unlimited)")
	delay := flag.Duration("delay", 0, "boot mode: artificial per-call source latency")
	persist := flag.String("persist", "", "boot mode: crash-safe answer-cache directory (empty = memory only)")
	invalRate := flag.Float64("invalidate-rate", 0, "mid-run /v1/invalidate calls per second against random tenants (0 = off); the run fails if any post-invalidation response carries a pre-invalidation generation")
	flag.Parse()

	fixtures := server.PaperTenants(*tenants)
	base := *addr
	var httpSrv *http.Server
	var booted *server.Server
	if *boot {
		s, err := server.Open(server.Config{
			MaxConcurrent: *concurrency,
			MaxQueue:      *queue,
			QueueWait:     *queueWait,
			DefaultQuota:  ucqn.Budget{MaxCalls: *quota},
			PersistDir:    *persist,
		})
		if err != nil {
			return err
		}
		booted = s
		for _, f := range fixtures {
			cat := f.Catalog()
			if *delay > 0 {
				var err error
				cat, err = ucqn.DelayedCatalog(cat, *delay)
				if err != nil {
					return err
				}
			}
			if _, err := s.AddTenant(f.Name, f.Patterns, cat, ucqn.Budget{}); err != nil {
				return err
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv = &http.Server{Handler: s.Handler()}
		go httpSrv.Serve(ln)
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "ucqnload: booted in-process server at %s\n", base)
	}

	var invalEvery time.Duration
	if *invalRate > 0 {
		invalEvery = time.Duration(float64(time.Second) / *invalRate)
	}
	report, loadErr := server.RunLoad(context.Background(), base, fixtures, server.LoadConfig{
		Users: *users, Duration: *duration, Seed: *seed, ZipfS: *zipfS,
		InvalidateEvery: invalEvery,
	})

	// Shut the booted server down before judging the run: a dirty
	// shutdown fails the smoke even when the load itself was clean.
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := booted.Close(); err != nil {
			return fmt.Errorf("close persistence: %w", err)
		}
		fmt.Fprintln(os.Stderr, "ucqnload: server shut down cleanly")
	}
	if loadErr != nil {
		return loadErr
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := server.ValidateBenchReport(data); err != nil {
		return err
	}
	fmt.Printf("%s\n", data)
	if *out != "" {
		if err := server.WriteBenchReport(*out, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ucqnload: wrote %s\n", *out)
	}

	if report.Requests == 0 {
		return fmt.Errorf("no requests completed")
	}
	if !report.Sound {
		return fmt.Errorf("unsound responses: %v", report.Unsound)
	}
	if report.Errors > 0 {
		return fmt.Errorf("%d transport errors", report.Errors)
	}
	if report.Stale > 0 {
		return fmt.Errorf("%d stale responses observed after invalidation acks", report.Stale)
	}
	return nil
}
