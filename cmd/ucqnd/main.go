// Command ucqnd serves UCQ¬ queries over limited-access sources to
// multiple tenants. Each tenant gets its own catalog and per-request
// call quota; all tenants share one plan/answer cache keyed by catalog
// identity and generation, so identical query texts never alias across
// tenants. Under overload the server does not 503: requests past the
// admission queue run with a zero call budget and return the certified
// underestimate (cache-covered disjuncts still answer; the rest are
// reported budget-exhausted in the Incompleteness field and the
// X-UCQN-Incompleteness header).
//
//	$ ucqnd -addr :8099 -tenants 3 -quota 50
//	$ curl -s localhost:8099/v1/query -d '{"tenant":"tenant-0","query":"Q(x, y) :- R(x, y)."}'
//
// With -catalog, tenants are mounted from an external-source catalog
// config instead of (or in addition to) the built-in fixtures: each
// configured tenant's relations live behind SQL or HTTP adapters
// (sql://, http://, https:// backends) and batched pushdown applies
// automatically where the backend supports it.
//
// Endpoints: POST /v1/query, POST /v1/invalidate, GET /v1/stats,
// GET /v1/healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ucqn "repro"
	// Registers the in-repo "fakedb" database/sql driver so catalog
	// configs with sql://fakedb/... backends work out of the box (real
	// deployments link their own driver the same way).
	_ "repro/internal/adapter/fakedb"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8099", "listen address")
	tenants := flag.Int("tenants", 3, "number of fixture tenants to serve")
	concurrency := flag.Int("concurrency", 0, "max concurrent query executions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth before shedding (0 = 4x concurrency)")
	queueWait := flag.Duration("queue-wait", 0, "max time a request waits for a slot (0 = 25ms)")
	quota := flag.Int("quota", 0, "per-request source-call quota per tenant (0 = unlimited)")
	delay := flag.Duration("delay", 0, "artificial per-call source latency (provokes shedding under load)")
	persist := flag.String("persist", "", "directory for the crash-safe answer-cache log (empty = memory only); restarts warm-load surviving entries")
	fleetDir := flag.String("fleet-dir", "", "shared answer-cache directory joining this replica to a cache fleet (mutually exclusive with -persist); siblings warm-start from answers this replica pays for and vice versa")
	fleetID := flag.String("fleet-id", "", "stable unique replica name within the fleet (default hostname-pid)")
	fleetTTL := flag.Duration("fleet-ttl", 0, "fleet writer-lease TTL (0 = 10s); a crashed writer is replaced within it")
	fleetPoll := flag.Duration("fleet-poll", 0, "fleet poll/renewal interval and staleness bound (0 = TTL/5)")
	catalog := flag.String("catalog", "", "external-source catalog config file (JSON); its tenants are mounted behind SQL/HTTP adapters")
	flag.Parse()

	if *fleetDir != "" && *fleetID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "ucqnd"
		}
		*fleetID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	s, err := server.Open(server.Config{
		MaxConcurrent: *concurrency,
		MaxQueue:      *queue,
		QueueWait:     *queueWait,
		DefaultQuota:  ucqn.Budget{MaxCalls: *quota},
		PersistDir:    *persist,
		FleetDir:      *fleetDir,
		FleetID:       *fleetID,
		FleetTTL:      *fleetTTL,
		FleetPoll:     *fleetPoll,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucqnd: %v\n", err)
		os.Exit(1)
	}
	if *catalog != "" {
		cfg, err := ucqn.LoadCatalogConfig(*catalog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucqnd: %v\n", err)
			os.Exit(1)
		}
		if err := server.MountCatalogConfig(s, cfg, ucqn.Budget{}); err != nil {
			fmt.Fprintf(os.Stderr, "ucqnd: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ucqnd: mounted %d external-source tenants from %s\n", len(cfg.Tenants), *catalog)
	}
	for _, f := range server.PaperTenants(*tenants) {
		cat := f.Catalog()
		if *delay > 0 {
			var err error
			cat, err = ucqn.DelayedCatalog(cat, *delay)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ucqnd: %v\n", err)
				os.Exit(1)
			}
		}
		if _, err := s.AddTenant(f.Name, f.Patterns, cat, ucqn.Budget{}); err != nil {
			fmt.Fprintf(os.Stderr, "ucqnd: %v\n", err)
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ucqnd: serving %d tenants on %s\n", *tenants, *addr)
	if n := s.Fleet(); n != nil {
		fmt.Fprintf(os.Stderr, "ucqnd: fleet replica %s joined %s as %s\n", *fleetID, *fleetDir, n.Role())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "ucqnd: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ucqnd: %s, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ucqnd: shutdown: %v\n", err)
			os.Exit(1)
		}
		// Flush the persistence log after draining requests: everything
		// cached since the last fsync batch becomes durable for the next
		// start.
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ucqnd: close persistence: %v\n", err)
			os.Exit(1)
		}
	}
}
