// Command answer runs ANSWER* (Figure 4 of Nash & Ludäscher, EDBT 2004)
// against a database instance: it evaluates the PLAN* underestimate and
// overestimate through access-pattern-restricted sources and reports the
// answer with its completeness information.
//
// Usage:
//
//	answer -patterns 'S^o R^oo B^oi T^oo' -data facts.dlog [-query q.dlog] [-improve]
//
// facts.dlog holds ground facts: R("a", "b"). S("c"). …
// With -improve, domain enumeration views (Example 8) upgrade the
// underestimate.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Answer(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
