// Command paperbench regenerates every experiment of DESIGN.md
// (E1–E23, E25, and E26; E24 is the serving harness, cmd/ucqnload): the
// reproduction of the algorithms, worked examples, and
// complexity claims of Nash & Ludäscher (EDBT 2004). Each experiment
// prints one table; EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	paperbench [-run E3] [-quick]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	ucqn "repro"
	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lichang"
	"repro/internal/logic"
	"repro/internal/server"
	"repro/internal/sources"
	"repro/internal/workload"
)

var (
	quick    = flag.Bool("quick", false, "smaller sizes for a fast smoke run")
	benchOut = flag.String("bench-out", "", "write the bench report of the experiment being run (E25–E28, with -run) to this path")
)

func main() {
	run := flag.String("run", "", "run only this experiment id (e.g. E3); default all")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		fn   func()
	}{
		{"E1", "ANSWERABLE: outputs and quadratic scaling (Fig. 1, Prop. 2)", e1},
		{"E2", "PLAN*: under/overestimates and scaling (Fig. 2, Ex. 4)", e2},
		{"E3", "FEASIBLE: cheap certificates vs Π₂ᴾ containment (Fig. 3, Thm. 18)", e3},
		{"E4", "ANSWER*: runtime completeness of infeasible plans (Fig. 4, Ex. 5)", e4},
		{"E5", "paper examples classification (Ex. 1, 3, 4, 9, 10)", e5},
		{"E6", "minimality of ans(Q) (Thm. 16, Prop. 4, Cor. 17)", e6},
		{"E7", "FEASIBLE vs Li–Chang baselines (Sec. 5.3–5.4, Ex. 9–10)", e7},
		{"E8", "foreign keys make infeasible plans runtime-complete (Ex. 6)", e8},
		{"E9", "satisfiability check scaling (Prop. 8)", e9},
		{"E10", "containment ↔ feasibility reductions (Thm. 18, Prop. 20)", e10},
		{"E11", "estimate ladder: under ≤ under+dom ≤ exact ≤ over (Ex. 8)", e11},
		{"E12", "web-service composition: source call accounting (Sec. 1)", e12},
		{"E13", "semantic optimizer under inclusion dependencies (Ex. 6, Sec. 6)", e13},
		{"E14", "ablation: ANSWERABLE order vs call-minimizing order", e14},
		{"E15", "ablation: acyclic containment fast path (CR97, Sec. 5.1)", e15},
		{"E16", "ablation: source-call caching", e16},
		{"E17", "ablation: greedy vs cost-based join order", e17},
		{"E18", "ablation: adornment strategy (selection pushdown)", e18},
		{"E19", "ablation: source-call runtime (dedup, concurrency, retries)", e19},
		{"E20", "streaming pipeline: time-to-first-tuple vs materialized", e20},
		{"E21", "graceful degradation: breaker savings and underestimate size", e21},
		{"E22", "semantic query cache: Zipf repeated workload", e22},
		{"E23", "hedged requests: tail latency with a slow replica", e23},
		{"E25", "columnar batch evaluation: map-based vs columnar hot loop", e25},
		{"E26", "crash-safe answer cache: cold start vs warm restart", e26},
		{"E27", "external adapters: batched IN pushdown vs per-call round trips", e27},
		{"E28", "cache fleet: sibling warm start and fleet-wide invalidation", e28},
	}
	found := false
	for _, e := range experiments {
		if *run != "" && !strings.EqualFold(*run, e.id) {
			continue
		}
		found = true
		fmt.Printf("== %s: %s ==\n", e.id, e.name)
		e.fn()
		fmt.Println()
	}
	if !found {
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

func sizes(full []int, small []int) []int {
	if *quick {
		return small
	}
	return full
}

// timeIt runs fn repeatedly for at least 20ms and returns ns/op.
func timeIt(fn func()) float64 {
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 20*time.Millisecond || n > 1<<20 {
			return float64(el.Nanoseconds()) / float64(n)
		}
		n *= 2
	}
}

// --- E1 -----------------------------------------------------------------

func e1() {
	// Part 1: the paper's ans(Q) outputs.
	q1 := ucqn.MustParseRule(`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
	p1 := ucqn.MustParsePatterns(`B^ioo B^oio C^oo L^o`)
	fmt.Printf("ans(Example 1) = %s\n", core.AnswerablePart(q1, p1))
	q9 := ucqn.MustParseRule(`Q(x) :- F(x), B(x), B(y), F(z).`)
	p9 := ucqn.MustParsePatterns(`F^o B^i`)
	fmt.Printf("ans(Example 9) = %s\n", core.AnswerablePart(q9, p9))

	// Part 2: quadratic scaling on reversed chains.
	fmt.Printf("%8s %14s %10s\n", "n", "ns/op", "ratio")
	var prev float64
	for _, n := range sizes([]int{16, 32, 64, 128, 256}, []int{8, 16, 32}) {
		q, ps := workload.ChainQuery(n)
		rev := workload.Reversed(q)
		t := timeIt(func() { core.AnswerablePart(rev, ps) })
		ratio := 0.0
		if prev > 0 {
			ratio = t / prev
		}
		fmt.Printf("%8d %14.0f %10.2f\n", n, t, ratio)
		prev = t
	}
	fmt.Println("expected: ratio ≈ 4 per doubling (quadratic, Prop. 2)")
}

// --- E2 -----------------------------------------------------------------

func e2() {
	u := ucqn.MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := ucqn.MustParsePatterns(`S^o R^oo B^oi T^oo`)
	fmt.Println(ucqn.Plan(u, ps))

	fmt.Printf("\n%8s %14s %10s\n", "n", "ns/op", "ratio")
	var prev float64
	for _, n := range sizes([]int{16, 32, 64, 128, 256}, []int{8, 16, 32}) {
		q, cps := workload.ChainQuery(n)
		rev := logic.AsUnion(workload.Reversed(q))
		t := timeIt(func() { core.ComputePlans(rev, cps) })
		ratio := 0.0
		if prev > 0 {
			ratio = t / prev
		}
		fmt.Printf("%8d %14.0f %10.2f\n", n, t, ratio)
		prev = t
	}
	fmt.Println("expected: ratio ≈ 4 per doubling (PLAN* is quadratic)")
}

// --- E3 -----------------------------------------------------------------

func e3() {
	fmt.Printf("%8s %12s %14s %12s %14s\n", "n", "hard nodes", "hard ns/op", "easy nodes", "easy ns/op")
	for _, n := range sizes([]int{2, 4, 6, 8, 10}, []int{2, 4, 6}) {
		hu, hps := workload.CaseSplitFamily(n)
		res := core.Feasible(hu, hps)
		if !res.Feasible || res.Verdict != core.VerdictContainment {
			fmt.Printf("unexpected verdict for hard n=%d: %v\n", n, res)
			return
		}
		ht := timeIt(func() { core.Feasible(hu, hps) })

		eu, eps := workload.EasyFamily(n)
		eres := core.Feasible(eu, eps)
		if !eres.Feasible || eres.Verdict != core.VerdictUnderEqualsOver {
			fmt.Printf("unexpected verdict for easy n=%d: %v\n", n, eres)
			return
		}
		et := timeIt(func() { core.Feasible(eu, eps) })
		fmt.Printf("%8d %12d %14.0f %12d %14.0f\n", n, res.Nodes, ht, eres.Nodes, et)
	}
	fmt.Println("expected: hard nodes grow superlinearly with n; easy stays flat (fast certificate)")
}

// --- E4 -----------------------------------------------------------------

func e4() {
	u := ucqn.MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := ucqn.MustParsePatterns(`S^o R^oo B^oi T^oo`)
	s := workload.Schema{Relations: []workload.RelDef{
		{Name: "R", Arity: 2}, {Name: "S", Arity: 1}, {Name: "B", Arity: 2}, {Name: "T", Arity: 2},
	}}
	trials := 200
	if *quick {
		trials = 50
	}
	fmt.Printf("%24s %10s %12s %12s\n", "instance family", "complete", "avg |ans_u|", "avg |Δ|")
	for _, fam := range []struct {
		name string
		fk   bool
	}{{"random", false}, {"R.z ⊆ S.z (Ex. 6)", true}} {
		g := workload.New(42)
		complete, sumU, sumD := 0, 0, 0
		for i := 0; i < trials; i++ {
			var facts = g.Facts(s, 6, 8)
			if fam.fk {
				facts = g.FactsWithInclusion(s, 6, 8, "R", 1, "S", 0)
			}
			in := engine.NewInstance()
			if err := in.LoadFacts(facts); err != nil {
				panic(err)
			}
			cat, err := in.Catalog(ps)
			if err != nil {
				panic(err)
			}
			res, err := engine.RunAnswerStar(u, ps, cat)
			if err != nil {
				panic(err)
			}
			if res.Complete {
				complete++
			}
			sumU += res.Under.Len()
			sumD += res.Delta.Len()
		}
		fmt.Printf("%24s %9.0f%% %12.2f %12.2f\n", fam.name,
			100*float64(complete)/float64(trials),
			float64(sumU)/float64(trials), float64(sumD)/float64(trials))
	}
	fmt.Println("expected: the FK family reports complete answers far more often, despite the query being infeasible")
}

// --- E5 -----------------------------------------------------------------

func e5() {
	fmt.Printf("%-12s %-11s %-10s %-9s %s\n", "example", "executable", "orderable", "feasible", "verdict")
	for _, ex := range workload.PaperExamples() {
		res := ucqn.Feasible(ex.Query, ex.Patterns)
		fmt.Printf("%-12s %-11v %-10v %-9v %s\n", ex.Name,
			ucqn.Executable(ex.Query, ex.Patterns),
			ucqn.Orderable(ex.Query, ex.Patterns),
			res.Feasible, res.Verdict)
	}
	fmt.Println("expected: matches the paper's prose (Ex. 1 orderable; Ex. 3/9/10 feasible-not-orderable; Ex. 4 infeasible)")
}

// --- E6 -----------------------------------------------------------------

func e6() {
	g := workload.New(7)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.5, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	trials := 300
	if *quick {
		trials = 60
	}
	prop4, thm16, engaged := 0, 0, 0
	for i := 0; i < trials; i++ {
		e := g.UCQ(s, 2, cfg)
		ordered, ok := core.ReorderUCQ(e, ps)
		if !ok {
			continue
		}
		q := logic.UCQ{Rules: []logic.CQ{ordered.Rules[0].Clone()}}
		q.Rules[0].Body = append(q.Rules[0].Body, g.CQ(s, cfg).Body...)
		a := core.AnswerableUCQ(q, ps).DropFalseRules()
		if a.HasNull() {
			continue
		}
		engaged++
		if ucqn.Contained(q, a) {
			prop4++
		}
		if ucqn.Contained(a, ordered) {
			thm16++
		}
	}
	fmt.Printf("cases engaged:              %d\n", engaged)
	fmt.Printf("Prop. 4  (Q ⊑ ans(Q)):      %d/%d\n", prop4, engaged)
	fmt.Printf("Thm. 16  (ans(Q) ⊑ E):      %d/%d\n", thm16, engaged)
	fmt.Println("expected: both properties hold in every engaged case")
}

// --- E7 -----------------------------------------------------------------

func e7() {
	g := workload.New(13)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.55, 2)
	cfg := workload.QueryConfig{PosLits: 4, NegLits: 0, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	trials := 200
	if *quick {
		trials = 40
	}
	queries := make([]logic.UCQ, trials)
	for i := range queries {
		queries[i] = g.UCQ(s, 3, cfg)
	}
	type algo struct {
		name string
		fn   func(logic.UCQ) bool
	}
	algos := []algo{
		{"FEASIBLE", func(u logic.UCQ) bool { return core.Feasible(u, ps).Feasible }},
		{"UCQstable", func(u logic.UCQ) bool { v, _ := lichang.UCQStable(u, ps); return v }},
		{"UCQstable*", func(u logic.UCQ) bool { v, _ := lichang.UCQStableStar(u, ps); return v }},
	}
	verdicts := make([][]bool, len(algos))
	times := make([]float64, len(algos))
	for ai, a := range algos {
		verdicts[ai] = make([]bool, trials)
		start := time.Now()
		for i, u := range queries {
			verdicts[ai][i] = a.fn(u)
		}
		times[ai] = float64(time.Since(start).Nanoseconds()) / float64(trials)
	}
	disagreements := 0
	feasibleCount := 0
	for i := 0; i < trials; i++ {
		if verdicts[0][i] {
			feasibleCount++
		}
		for ai := 1; ai < len(algos); ai++ {
			if verdicts[ai][i] != verdicts[0][i] {
				disagreements++
			}
		}
	}
	fmt.Printf("%-12s %14s\n", "algorithm", "ns/query")
	for ai, a := range algos {
		fmt.Printf("%-12s %14.0f\n", a.name, times[ai])
	}
	fmt.Printf("queries: %d (feasible: %d)   disagreements: %d\n", trials, feasibleCount, disagreements)
	fmt.Println("expected: zero disagreements; UCQstable pays for minimization, UCQstable* and FEASIBLE are close")
}

// --- E8 -----------------------------------------------------------------

func e8() {
	// Same as E4 but sweeping the inclusion rate: what fraction of R
	// tuples violate the FK determines how often completeness is
	// detected.
	u := ucqn.MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := ucqn.MustParsePatterns(`S^o R^oo B^oi T^oo`)
	trials := 150
	if *quick {
		trials = 30
	}
	fmt.Printf("%14s %12s\n", "FK violations", "complete")
	for _, extra := range []int{0, 1, 2, 4} {
		complete := 0
		for i := 0; i < trials; i++ {
			in := engine.NewInstance()
			// S covers the base domain; R references it, plus `extra`
			// dangling tuples.
			for d := 0; d < 6; d++ {
				in.MustAdd("S", fmt.Sprintf("z%d", d))
				in.MustAdd("R", fmt.Sprintf("x%d", d), fmt.Sprintf("z%d", d))
			}
			for e := 0; e < extra; e++ {
				in.MustAdd("R", fmt.Sprintf("xx%d", e), fmt.Sprintf("dangling%d", e))
			}
			in.MustAdd("B", "x0", "y0")
			in.MustAdd("T", "t1", "t2")
			cat, err := in.Catalog(ps)
			if err != nil {
				panic(err)
			}
			res, err := engine.RunAnswerStar(u, ps, cat)
			if err != nil {
				panic(err)
			}
			if res.Complete {
				complete++
			}
		}
		fmt.Printf("%14d %11.0f%%\n", extra, 100*float64(complete)/float64(trials))
	}
	fmt.Println("expected: 100% complete at 0 violations, 0% once dangling R tuples exist")
}

// --- E9 -----------------------------------------------------------------

func e9() {
	fmt.Printf("%8s %14s %10s\n", "n", "ns/op", "ratio")
	var prev float64
	for _, n := range sizes([]int{64, 128, 256, 512}, []int{32, 64}) {
		q, _ := workload.ChainQuery(n)
		// Add a complementary pair at the end so the scan is full-length.
		q.Body = append(q.Body, logic.Neg(q.Body[0].Atom))
		t := timeIt(func() { ucqn.Satisfiable(logic.AsUnion(q)) })
		ratio := 0.0
		if prev > 0 {
			ratio = t / prev
		}
		fmt.Printf("%8d %14.0f %10.2f\n", n, t, ratio)
		prev = t
	}
	fmt.Println("expected: ratio ≈ 2 per doubling (near-linear with hashing; the paper states quadratic as an upper bound)")
}

// --- E10 ----------------------------------------------------------------

func e10() {
	g := workload.New(31)
	s := g.Schema(4, 1, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 0, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	trials := 150
	if *quick {
		trials = 30
	}
	agreeU, agreeC, totalU, totalC := 0, 0, 0, 0
	for i := 0; i < trials; i++ {
		p := g.UCQ(s, 2, cfg)
		q := g.UCQ(s, 2, cfg)
		want := ucqn.Contained(p, q)
		red, rps, err := ucqn.ReduceContToFeasible(p, q)
		if err != nil {
			continue
		}
		res, err := ucqn.FeasibleLimited(red, rps, 500_000)
		if err != nil {
			continue
		}
		totalU++
		if res.Feasible == want {
			agreeU++
		}

		pc, qc := g.CQ(s, cfg), g.CQ(s, cfg)
		qc.HeadArgs = append([]logic.Term(nil), pc.HeadArgs...)
		if !qc.HeadSafe() {
			continue
		}
		wantC := ucqn.Contained(logic.AsUnion(pc), logic.AsUnion(qc))
		l, lps, err := ucqn.ReduceContCQToFeasible(pc, qc)
		if err != nil {
			continue
		}
		resC, err := ucqn.FeasibleLimited(logic.AsUnion(l), lps, 500_000)
		if err != nil {
			continue
		}
		totalC++
		if resC.Feasible == wantC {
			agreeC++
		}
	}
	fmt.Printf("Thm. 18  CONT(UCQ¬) → FEASIBLE(UCQ¬):  %d/%d agree\n", agreeU, totalU)
	fmt.Printf("Prop. 20 CONT(CQ¬)  → FEASIBLE(CQ¬):   %d/%d agree\n", agreeC, totalC)
	fmt.Println("expected: full agreement (the reductions are exact)")
}

// --- E11 ----------------------------------------------------------------

func e11() {
	g := workload.New(51)
	s := workload.Schema{Relations: []workload.RelDef{
		{Name: "R", Arity: 2}, {Name: "S", Arity: 1}, {Name: "B", Arity: 2}, {Name: "T", Arity: 2},
	}}
	u := ucqn.MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := ucqn.MustParsePatterns(`S^o R^oo B^oi T^oo`)
	trials := 150
	if *quick {
		trials = 30
	}
	var sumU, sumI, sumX, sumO float64
	ladder := 0
	for i := 0; i < trials; i++ {
		in := engine.NewInstance()
		if err := in.LoadFacts(g.Facts(s, 8, 6)); err != nil {
			panic(err)
		}
		cat, err := in.Catalog(ps)
		if err != nil {
			panic(err)
		}
		res, err := engine.RunAnswerStar(u, ps, cat)
		if err != nil {
			panic(err)
		}
		improved, _, _, err := engine.ImproveUnder(res, ps, cat, 100_000)
		if err != nil {
			panic(err)
		}
		truth, err := engine.AnswerNaive(u, in)
		if err != nil {
			panic(err)
		}
		sumU += float64(res.Under.Len())
		sumI += float64(improved.Len())
		sumX += float64(truth.Len())
		sumO += float64(res.Over.Len())
		if res.Under.Len() <= improved.Len() && improved.Len() <= truth.Len() {
			ladder++
		}
	}
	n := float64(trials)
	fmt.Printf("avg |ans_u| = %.2f ≤ avg |ans_u+dom| = %.2f ≤ avg |exact| = %.2f   (avg |ans_o| = %.2f, with nulls)\n",
		sumU/n, sumI/n, sumX/n, sumO/n)
	fmt.Printf("ladder held in %d/%d instances\n", ladder, trials)
	fmt.Println("expected: ladder holds in every instance; dom closes part of the gap")
}

// --- E12 ----------------------------------------------------------------

func e12() {
	fmt.Printf("%8s %12s %14s %12s\n", "fan-out", "calls", "tuples", "ns/op")
	for _, n := range sizes([]int{2, 4, 8, 16}, []int{2, 4}) {
		q, ps := workload.StarQuery(n)
		g := workload.New(int64(n))
		in := engine.NewInstance()
		// 40 x-values; each Ri maps x to one y-value so bindings stay
		// constant and fan-out is the only variable; S filters half.
		for x := 0; x < 40; x++ {
			xv := fmt.Sprintf("x%d", x)
			for i := 1; i <= n; i++ {
				in.MustAdd(fmt.Sprintf("R%d", i), xv, fmt.Sprintf("y%d_%d", i, x))
			}
			if x%2 == 0 {
				in.MustAdd("S", xv)
			}
		}
		_ = g
		cat, err := in.Catalog(ps)
		if err != nil {
			panic(err)
		}
		uq := logic.AsUnion(q)
		t := timeIt(func() {
			if _, err := engine.Answer(uq, ps, cat); err != nil {
				panic(err)
			}
		})
		cat.ResetStats()
		if _, err := engine.Answer(uq, ps, cat); err != nil {
			panic(err)
		}
		st := cat.TotalStats()
		fmt.Printf("%8d %12d %14d %12.0f\n", n, st.Calls, st.TuplesReturned, t)
	}
	fmt.Println("expected: calls grow with fan-out times bindings; the negated filter adds one call per surviving binding")
}

// --- E13 ----------------------------------------------------------------

func e13() {
	u := ucqn.MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := ucqn.MustParsePatterns(`S^o R^oo B^oi T^oo`)
	inds := ucqn.MustParseINDs(`R[1] < S[0]`)
	before := ucqn.Feasible(u, ps)
	opt := inds.Optimize(u)
	after := ucqn.Feasible(opt, ps)
	fmt.Printf("%-28s rules=%d feasible=%v (%s)\n", "without constraints:", len(u.Rules), before.Feasible, before.Verdict)
	fmt.Printf("%-28s rules=%d feasible=%v (%s)\n", "with R[1] ⊆ S[0]:", len(opt.Rules), after.Feasible, after.Verdict)

	// The chase-based optimizer additionally follows dependency chains
	// R ⊆ S ⊆ T that the direct literal match cannot see.
	chain := ucqn.MustParseINDs(`R[1] < S[0]; S[0] < T[0]`)
	u2 := ucqn.MustParseQuery(`
		Q(x, y) :- not T(z), R(x, z), B(x, y).
		Q(x, y) :- W(x, y).
	`)
	ps2 := ucqn.MustParsePatterns(`T^o R^oo B^oi W^oo S^o`)
	direct := chain.Optimize(u2)
	chased := chain.OptimizeChase(u2)
	fmt.Printf("%-28s direct optimizer keeps %d rules; chase keeps %d; FeasibleUnder=%v\n",
		"chain R ⊆ S ⊆ T:", len(direct.Rules), len(chased.Rules),
		ucqn.FeasibleUnder(u2, ps2, chain).Feasible)
	fmt.Println("expected: the dependency refutes the dismissed rule at compile time; only the chase sees the two-step chain")
}

// --- E14 ----------------------------------------------------------------

func e14() {
	// R1 produces many bindings; the filter ¬L removes 90% of them;
	// R2 then fans out. ANSWERABLE discovers R1, R2, ¬L in one pass
	// (filter last); the optimizer schedules the filter first.
	q := ucqn.MustParseQuery(`Q(x, y) :- R1(x, w), R2(w, y), not L(x).`)
	ps := ucqn.MustParsePatterns(`R1^oo R2^io L^i`)
	in := ucqn.NewInstance()
	for i := 0; i < 100; i++ {
		in.MustAdd("R1", fmt.Sprintf("x%d", i), fmt.Sprintf("w%d", i))
		in.MustAdd("R2", fmt.Sprintf("w%d", i), fmt.Sprintf("y%d", i))
		if i%10 != 0 {
			in.MustAdd("L", fmt.Sprintf("x%d", i)) // filters 90%
		}
	}
	ordered, _ := ucqn.Reorder(q, ps)
	optimized, _ := ucqn.OptimizeOrder(q, ps)
	fmt.Printf("%-20s %-44s %8s %8s\n", "plan", "order", "calls", "tuples")
	for _, v := range []struct {
		name string
		q    ucqn.Query
	}{{"ANSWERABLE order", ordered}, {"optimized order", optimized}} {
		cat, err := in.Catalog(ps)
		if err != nil {
			panic(err)
		}
		if _, err := ucqn.Exec(context.Background(), v.q, ps, cat); err != nil {
			panic(err)
		}
		st := cat.TotalStats()
		fmt.Printf("%-20s %-44s %8d %8d\n", v.name, v.q.Rules[0].String()[len("Q(x, y) :- "):], st.Calls, st.TuplesReturned)
	}
	fmt.Println("expected: scheduling the ¬L filter before R2 cuts the R2 calls by ~90%")
}

// --- E15 ----------------------------------------------------------------

func e15() {
	// Adversarial family for backtracking: is a boolean chain of length
	// d+1 contained in... equivalently, does the chain map into a
	// complete binary tree of depth d? It does not (every downward path
	// is too short), but naive backtracking discovers this only after
	// exploring every partial root-to-leaf embedding (≈2^d dead ends).
	// The semijoin program over the chain's join tree decides in
	// polynomial time. (On easy instances the fast path has constant
	// overhead; this family is where it pays.)
	fmt.Printf("%8s %16s %16s %10s\n", "depth", "fast ns/op", "slow ns/op", "speedup")
	for _, d := range sizes([]int{6, 8, 10, 12}, []int{6, 8}) {
		p := treeRule(d)
		q := logic.AsUnion(chainRule(d + 1))
		c0 := containmentChecker(q, false)
		if c0.Contains(p) {
			fmt.Printf("unexpected containment at depth %d\n", d)
			return
		}
		fast := timeIt(func() {
			c := containmentChecker(q, false)
			c.Contains(p)
		})
		slow := timeIt(func() {
			c := containmentChecker(q, true)
			c.Contains(p)
		})
		fmt.Printf("%8d %16.0f %16.0f %9.1fx\n", d, fast, slow, slow/fast)
	}
	fmt.Println("expected: speedup grows exponentially with depth (backtracking explores every partial embedding)")
}

// chainRule is the boolean chain query E(x0,x1), …, E(x{n-1},xn).
func chainRule(n int) logic.CQ {
	q := logic.CQ{HeadPred: "Q"}
	for i := 0; i < n; i++ {
		q.Body = append(q.Body, logic.Pos(logic.NewAtom("E",
			logic.Var(fmt.Sprintf("x%d", i)), logic.Var(fmt.Sprintf("x%d", i+1)))))
	}
	return q
}

// treeRule is the boolean query whose body lists the edges of a complete
// binary tree of the given depth.
func treeRule(depth int) logic.CQ {
	q := logic.CQ{HeadPred: "Q"}
	var rec func(node string, d int)
	rec = func(node string, d int) {
		if d == 0 {
			return
		}
		for _, side := range []string{"l", "r"} {
			child := node + side
			q.Body = append(q.Body, logic.Pos(logic.NewAtom("E", logic.Var(node), logic.Var(child))))
			rec(child, d-1)
		}
	}
	rec("t", depth)
	return q
}

func containmentChecker(q logic.UCQ, disableAcyclic bool) *containment.Checker {
	c := containment.NewChecker(q)
	c.DisableAcyclic = disableAcyclic
	return c
}

// --- E16 ----------------------------------------------------------------

func e16() {
	// Join with many repeated lookup keys: 200 R-tuples share 10 z
	// values, so the per-binding loop calls T^io 200 times but only 10
	// distinct ways. Run under the sequential runtime so the cache (not
	// the runtime's own deduplication) does the collapsing.
	q := ucqn.MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`)
	ps := ucqn.MustParsePatterns(`R^oo T^io`)
	in := ucqn.NewInstance()
	for i := 0; i < 200; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%10))
	}
	for z := 0; z < 10; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	seq := ucqn.SequentialRuntime()
	fmt.Printf("%-10s %14s %14s\n", "catalog", "remote calls", "cache hits")
	plain, err := in.Catalog(ps)
	if err != nil {
		panic(err)
	}
	if _, err := seq.Answer(context.Background(), q, ps, plain); err != nil {
		panic(err)
	}
	st := plain.TotalStats()
	fmt.Printf("%-10s %14d %14s\n", "plain", st.Calls, "-")

	base, err := in.Catalog(ps)
	if err != nil {
		panic(err)
	}
	cached, caches, err := ucqn.CachedCatalog(base)
	if err != nil {
		panic(err)
	}
	if _, err := seq.Answer(context.Background(), q, ps, cached); err != nil {
		panic(err)
	}
	// The wrapped catalog reports the inner tables' real remote traffic.
	st2 := cached.TotalStats()
	hits := 0
	for _, c := range caches {
		h, _ := c.HitsMisses()
		hits += h
	}
	fmt.Printf("%-10s %14d %14d\n", "cached", st2.Calls, hits)
	fmt.Println("expected: caching collapses the 200 T lookups to 10 remote calls")
}

// --- E17 ----------------------------------------------------------------

func e17() {
	// Big(x,w) has 500 tuples, Small(x,v) has 5; both are callable
	// first. The greedy order (no statistics) starts with Big and pays
	// one Small call per Big tuple; the cost-based order starts with
	// Small.
	q := ucqn.MustParseQuery(`Q(x) :- Big(x, w), Small(x, v).`)
	ps := ucqn.MustParsePatterns(`Big^oo Big^io Small^oo Small^io`)
	in := ucqn.NewInstance()
	for i := 0; i < 500; i++ {
		in.MustAdd("Big", fmt.Sprintf("x%d", i), fmt.Sprintf("w%d", i))
	}
	for i := 0; i < 5; i++ {
		in.MustAdd("Small", fmt.Sprintf("x%d", i), fmt.Sprintf("v%d", i))
	}
	st := ucqn.StatsFromCardinalities(map[string]int{"Big": 500, "Small": 5})
	greedy, _ := ucqn.OptimizeOrder(q, ps)
	costed, _ := ucqn.CostOrder(q, ps, st)
	fmt.Printf("%-18s %-34s %8s %8s\n", "planner", "order", "calls", "tuples")
	for _, v := range []struct {
		name string
		q    ucqn.Query
	}{{"greedy", greedy}, {"cost-based", costed}} {
		cat, err := in.Catalog(ps)
		if err != nil {
			panic(err)
		}
		if _, err := ucqn.Exec(context.Background(), v.q, ps, cat); err != nil {
			panic(err)
		}
		stx := cat.TotalStats()
		fmt.Printf("%-18s %-34s %8d %8d\n", v.name, v.q.Rules[0].String()[len("Q(x) :- "):], stx.Calls, stx.TuplesReturned)
	}
	fmt.Println("expected: starting with the small relation cuts calls by ~100x")
}

// --- E18 ----------------------------------------------------------------

func e18() {
	// T supports both a keyed lookup (T^io) and a full scan (T^oo).
	// Executability is identical either way; the tuples shipped differ
	// by the relation size ("bound is easier", [Ull88]).
	q := ucqn.MustParseRule(`Q(x, y) :- R(x, z), T(z, y).`)
	ps := ucqn.MustParsePatterns(`R^oo T^io T^oo`)
	in := ucqn.NewInstance()
	for i := 0; i < 10; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
	}
	for i := 0; i < 1000; i++ {
		in.MustAdd("T", fmt.Sprintf("z%d", i), fmt.Sprintf("y%d", i))
	}
	fmt.Printf("%-16s %-10s %8s %10s\n", "strategy", "T pattern", "calls", "tuples")
	for _, strat := range []struct {
		name string
		s    access.AdornStrategy
	}{{"most-inputs", access.PreferMostInputs}, {"fewest-inputs", access.PreferFewestInputs}} {
		steps, ok := access.AdornInOrderPrefer(q.Body, ps, strat.s)
		if !ok {
			panic("not executable")
		}
		cat, err := in.Catalog(ps)
		if err != nil {
			panic(err)
		}
		rel, err := engine.AnswerSteps(q, steps, cat)
		if err != nil {
			panic(err)
		}
		if rel.Len() != 10 {
			panic("wrong answer count")
		}
		st := cat.TotalStats()
		fmt.Printf("%-16s %-10s %8d %10d\n", strat.name, steps[1].Pattern, st.Calls, st.TuplesReturned)
	}
	fmt.Println("expected: identical answers; the pushdown strategy ships ~50x fewer tuples (the runtime dedups the repeated scan to one fetch; per-binding it was ~1000x)")
}

// --- E19 ----------------------------------------------------------------

func e19() {
	// The source-call runtime ablation: the per-binding loop vs the
	// deduplicating concurrent runtime vs the same runtime retrying
	// injected transient failures. Answers are identical in every row;
	// only the traffic differs.
	n := 400
	if *quick {
		n = 80
	}
	q := ucqn.MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`)
	ps := ucqn.MustParsePatterns(`R^oo T^io`)
	in := ucqn.NewInstance()
	for i := 0; i < n; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%10))
	}
	for z := 0; z < 10; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}

	catalog := func(cfg *ucqn.FlakyConfig) *ucqn.Catalog {
		base, err := in.Catalog(ps)
		if err != nil {
			panic(err)
		}
		if cfg == nil {
			return base
		}
		var wrapped []ucqn.Source
		for _, name := range base.Names() {
			wrapped = append(wrapped, ucqn.NewFlakySource(base.Source(name), *cfg))
		}
		cat, err := ucqn.NewCatalog(wrapped...)
		if err != nil {
			panic(err)
		}
		return cat
	}

	retry := ucqn.NewRuntime()
	retry.Retry = ucqn.RetryPolicy{MaxAttempts: 4}
	rows := []struct {
		name  string
		rt    *ucqn.Runtime
		flaky *ucqn.FlakyConfig
	}{
		{"sequential", ucqn.SequentialRuntime(), nil},
		{"dedup", ucqn.NewRuntime(), nil},
		{"dedup+flaky", retry, &ucqn.FlakyConfig{FailFirst: 2}},
	}
	fmt.Printf("%-14s %8s %8s %8s %8s\n", "runtime", "calls", "dedup", "retries", "answers")
	for _, row := range rows {
		cat := catalog(row.flaky)
		rel, prof, err := row.rt.AnswerProfiled(context.Background(), q, ps, cat)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s %8d %8d %8d %8d\n",
			row.name, prof.TotalCalls(), prof.TotalDeduped(), prof.TotalRetries(), rel.Len())
	}
	fmt.Printf("expected: dedup collapses the %d T lookups to 10 distinct calls; retries absorb the injected failures with identical answers\n", n)
}

// --- E20 ----------------------------------------------------------------

func e20() {
	// The streaming pipeline ablation: pipelined execution vs the
	// materializing evaluator over sources with a simulated network round
	// trip. Answers and source calls are identical; what changes is when
	// the first answer arrives and how many bindings sit resident.
	n := 300
	if *quick {
		n = 60
	}
	delay := 500 * time.Microsecond
	q := ucqn.MustParseQuery(`Q(x, y) :- R(x, z), S(z, w), T(w, y).`)
	ps := ucqn.MustParsePatterns(`R^oo S^io T^io`)
	in := ucqn.NewInstance()
	for i := 0; i < n; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
		in.MustAdd("S", fmt.Sprintf("z%d", i), fmt.Sprintf("w%d", i))
		in.MustAdd("T", fmt.Sprintf("w%d", i), fmt.Sprintf("y%d", i))
	}

	rt := ucqn.NewRuntime()
	rt.BatchSize = 16 // small batches, so streaming shows its latency edge

	fmt.Printf("%-14s %12s %12s %8s %8s %8s\n",
		"mode", "first-tuple", "total", "calls", "peak", "answers")
	for _, streamed := range []bool{false, true} {
		base, err := in.Catalog(ps)
		if err != nil {
			panic(err)
		}
		cat, err := ucqn.DelayedCatalog(base, delay)
		if err != nil {
			panic(err)
		}
		opts := []ucqn.ExecOption{ucqn.WithRuntime(rt), ucqn.WithProfile()}
		name := "materialized"
		if streamed {
			opts = append(opts, ucqn.WithStreaming())
			name = "streamed"
		}
		res, err := ucqn.Exec(context.Background(), q, ps, cat, opts...)
		if err != nil {
			panic(err)
		}
		rel, err := res.Rel()
		if err != nil {
			panic(err)
		}
		prof, ok := res.Profile()
		if !ok {
			panic("profile not available")
		}
		ttft := prof.TimeToFirst
		if ttft == 0 {
			ttft = prof.Elapsed // materialized: nothing arrives before the end
		}
		fmt.Printf("%-14s %12s %12s %8d %8d %8d\n",
			name, ttft.Round(time.Microsecond), prof.Elapsed.Round(time.Microsecond),
			prof.TotalCalls(), prof.PeakBindings(), rel.Len())
	}
	fmt.Println("expected: identical calls and answers; the pipeline's first tuple arrives well before the materialized total, with far fewer bindings resident")
}

// --- E21 ----------------------------------------------------------------

func e21() {
	// Graceful degradation. Part 1: the circuit breaker's call savings
	// when every disjunct of a union touches one dead source — bare
	// retries pay the full schedule per disjunct, the breaker opens once
	// and fails the rest fast. Part 2: the degraded answer as a runtime
	// underestimate — its size shrinks monotonically with the fraction
	// of sources killed, and the report accounts for every drop.
	deadRules := 8
	if *quick {
		deadRules = 4
	}
	src := "Q(x) :- R(x).\n"
	for i := 0; i < deadRules; i++ {
		src += fmt.Sprintf("Q(x) :- S(%q, x).\n", fmt.Sprintf("c%d", i))
	}
	q := ucqn.MustParseQuery(src)
	ps := ucqn.MustParsePatterns(`R^o S^io`)
	in := ucqn.NewInstance()
	for i := 0; i < 40; i++ {
		in.MustAdd("R", fmt.Sprintf("r%d", i))
	}
	rt := func() *ucqn.Runtime {
		rt := ucqn.NewRuntime()
		rt.Concurrency = 1
		rt.Retry = ucqn.RetryPolicy{MaxAttempts: 4}
		return rt
	}
	kill := func(useBreaker bool) (*ucqn.Catalog, *ucqn.FlakySource) {
		base, err := in.Catalog(ps)
		if err != nil {
			panic(err)
		}
		var srcs []ucqn.Source
		var flaky *ucqn.FlakySource
		for _, name := range base.Names() {
			s := base.Source(name)
			if name == "S" {
				flaky = ucqn.NewFlakySource(s, ucqn.FlakyConfig{FailEveryN: 1})
				s = flaky
				if useBreaker {
					s = ucqn.NewBreaker(flaky, ucqn.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour})
				}
			}
			srcs = append(srcs, s)
		}
		cat, err := ucqn.NewCatalog(srcs...)
		if err != nil {
			panic(err)
		}
		return cat, flaky
	}

	fmt.Printf("%-14s %10s %10s %8s\n", "mode", "dead-calls", "dropped", "answers")
	for _, useBreaker := range []bool{false, true} {
		cat, flaky := kill(useBreaker)
		res, err := ucqn.Exec(context.Background(), q, ps, cat,
			ucqn.WithRuntime(rt()), ucqn.WithPartialResults())
		if err != nil {
			panic(err)
		}
		rel, err := res.Rel()
		if err != nil {
			panic(err)
		}
		inc, _ := res.Incompleteness()
		name := "bare-retries"
		if useBreaker {
			name = "breaker"
		}
		fmt.Printf("%-14s %10d %10d %8d\n", name, flaky.Injected(), len(inc.Failed), rel.Len())
	}
	fmt.Printf("expected: identical degraded answers; bare retries pay %d×4 calls to the dead source, the breaker at most its window (4)\n\n", deadRules)

	// Part 2: a wide union with one relation per disjunct; kill a growing
	// fraction of the sources and watch the certified underestimate
	// shrink while the report keeps the books.
	wide := 8
	var wsrc, wpat string
	for i := 0; i < wide; i++ {
		wsrc += fmt.Sprintf("Q(x) :- R%d(x).\n", i)
		wpat += fmt.Sprintf("R%d^o ", i)
	}
	wq := ucqn.MustParseQuery(wsrc)
	wps := ucqn.MustParsePatterns(wpat)
	win := ucqn.NewInstance()
	for i := 0; i < wide; i++ {
		for j := 0; j < 10; j++ {
			win.MustAdd(fmt.Sprintf("R%d", i), fmt.Sprintf("v%d_%d", i, j))
		}
	}
	fmt.Printf("%-8s %10s %10s %8s %8s\n", "killed", "survived", "dropped", "answers", "ratio")
	for _, frac := range []int{0, 25, 50, 75} {
		dead := map[string]bool{}
		for i := 0; i < wide*frac/100; i++ {
			dead[fmt.Sprintf("R%d", i)] = true
		}
		base, err := win.Catalog(wps)
		if err != nil {
			panic(err)
		}
		var srcs []ucqn.Source
		for _, name := range base.Names() {
			s := base.Source(name)
			if dead[name] {
				flaky := ucqn.NewFlakySource(s, ucqn.FlakyConfig{FailEveryN: 1})
				s = ucqn.NewBreaker(flaky, ucqn.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour})
			}
			srcs = append(srcs, s)
		}
		cat, err := ucqn.NewCatalog(srcs...)
		if err != nil {
			panic(err)
		}
		res, err := ucqn.Exec(context.Background(), wq, wps, cat,
			ucqn.WithRuntime(rt()), ucqn.WithPartialResults())
		if err != nil {
			panic(err)
		}
		rel, err := res.Rel()
		if err != nil {
			panic(err)
		}
		inc, _ := res.Incompleteness()
		ratio, _ := inc.RuleRatio()
		fmt.Printf("%7d%% %10d %10d %8d %8.2f\n",
			frac, inc.RulesSurvived, len(inc.Failed), rel.Len(), ratio)
	}
	fmt.Println("expected: answers shrink by exactly 10 rows per killed source; survived+dropped always totals 8; ratio is the certified completeness floor")
}

func e22() {
	// Semantic query cache under a Zipf-repeated workload: the paper
	// examples' executable forms plus α-renamed and literal-padded
	// variants, requests drawn Zipf(s≈1) so ~90% repeat an earlier
	// query, sources behind a simulated round-trip latency. Three modes:
	// cache off, plan cache only (canonicalization and planning
	// amortized, answers live), and the full two-tier cache.
	delay := 200 * time.Microsecond
	factor := 10
	if *quick {
		factor = 4
	}

	// The paper-instance generator of the test suite: deterministic,
	// with enough value sharing that joins repeat keys.
	instance := func(ps *ucqn.PatternSet) *ucqn.Instance {
		in := ucqn.NewInstance()
		dom := []string{"a", "b", "c", "d"}
		for _, rel := range ps.Relations() {
			ar := ps.Arity(rel)
			for i := 0; i < 8; i++ {
				vals := make([]string, ar)
				for j := range vals {
					vals[j] = dom[(i+2*j)%len(dom)]
				}
				in.MustAdd(rel, vals...)
			}
		}
		return in
	}
	executable := func(ex workload.PaperExample) (ucqn.Query, bool) {
		if ordered, ok := ucqn.Reorder(ex.Query, ex.Patterns); ok {
			return ordered, true
		}
		under := ucqn.Plan(ex.Query, ex.Patterns).Under
		for _, r := range under.Rules {
			if !r.False {
				return under, true
			}
		}
		return ucqn.Query{}, false
	}

	type request struct {
		q  ucqn.Query
		ps *ucqn.PatternSet
		ci int
	}
	var reqs []request
	examples := 0
	for _, ex := range workload.PaperExamples() {
		u, ok := executable(ex)
		if !ok {
			continue
		}
		for _, v := range []ucqn.Query{
			u,
			workload.AlphaRename(u, "z"),
			workload.PadRedundant(u),
			workload.PadRedundant(workload.AlphaRename(u, "zp")),
		} {
			reqs = append(reqs, request{q: v, ps: ex.Patterns, ci: examples})
		}
		examples++
	}
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })

	catalogs := func() []*ucqn.Catalog {
		var cats []*ucqn.Catalog
		for _, ex := range workload.PaperExamples() {
			if _, ok := executable(ex); !ok {
				continue
			}
			base, err := instance(ex.Patterns).Catalog(ex.Patterns)
			if err != nil {
				panic(err)
			}
			cat, err := ucqn.DelayedCatalog(base, delay)
			if err != nil {
				panic(err)
			}
			cats = append(cats, cat)
		}
		return cats
	}

	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 1.01, 1, uint64(len(reqs)-1))
	seq := make([]int, factor*len(reqs))
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}

	pctl := func(lat []time.Duration, p float64) time.Duration {
		s := append([]time.Duration(nil), lat...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[int(p*float64(len(s)-1))]
	}

	fmt.Printf("requests=%d distinct=%d equivalence classes=%d zipf s≈1 latency=%s\n", len(seq), len(reqs), examples, delay)
	fmt.Printf("%-10s %10s %10s %10s %12s %12s\n", "mode", "src-calls", "plan-hits", "ans-hits", "p50", "p99")
	for _, mode := range []string{"off", "plan-only", "full"} {
		var qc *ucqn.QueryCache
		switch mode {
		case "plan-only":
			qc = ucqn.NewQueryCache(ucqn.QueryCacheOptions{DisableAnswers: true})
		case "full":
			qc = ucqn.NewQueryCache(ucqn.QueryCacheOptions{})
		}
		cats := catalogs()
		var lat []time.Duration
		for _, idx := range seq {
			r := reqs[idx]
			var opts []ucqn.ExecOption
			if qc != nil {
				opts = append(opts, ucqn.WithQueryCache(qc))
			}
			start := time.Now()
			res, err := ucqn.Exec(context.Background(), r.q, r.ps, cats[r.ci], opts...)
			if err != nil {
				panic(err)
			}
			if _, err := res.Rel(); err != nil {
				panic(err)
			}
			lat = append(lat, time.Since(start))
		}
		calls := 0
		for _, c := range cats {
			calls += c.TotalStats().Calls
		}
		planHits, ansHits := "-", "-"
		if qc != nil {
			st := qc.Stats()
			planHits, ansHits = fmt.Sprint(st.PlanHits), fmt.Sprint(st.AnswerHits)
		}
		fmt.Printf("%-10s %10d %10s %10s %12s %12s\n", mode, calls, planHits, ansHits,
			pctl(lat, 0.50).Round(time.Microsecond), pctl(lat, 0.99).Round(time.Microsecond))
	}
	fmt.Println("expected: one plan build per equivalence class (variants collapse); the full cache cuts source calls ≥5× and p50 by orders of magnitude; plan-only already beats off (minimal representative plans)")
}

// --- E23 ----------------------------------------------------------------

// slowEveryNth delays every nth call of the wrapped source by extra,
// honoring cancellation — the intermittently slow replica of E23.
type slowEveryNth struct {
	ucqn.Source
	n     int
	extra time.Duration

	mu    sync.Mutex
	calls int
}

func (s *slowEveryNth) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]sources.Tuple, error) {
	s.mu.Lock()
	s.calls++
	slow := s.calls%s.n == 0
	s.mu.Unlock()
	if slow {
		t := time.NewTimer(s.extra)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return sources.CallWithContext(ctx, s.Source, p, inputs)
}

func e23() {
	// Hedged requests over a three-replica source with one replica
	// intermittently slow (every 13th of its calls stalls 150ms).
	// Without hedging the slow replica owns the p99; with hedging the
	// backup attempt races past it for <5% extra calls.
	q := ucqn.MustParseQuery(`Q(y) :- R(x), S(x, z), T(z, y).`)
	ps := ucqn.MustParsePatterns(`R^o S^io T^io`)
	in := ucqn.NewInstance().
		MustAdd("R", "x0").
		MustAdd("S", "x0", "z0").
		MustAdd("T", "z0", "y0")
	base := 2 * time.Millisecond
	// Every 13th slow call of one replica puts ~2.6% of requests in the
	// tail: enough to own the p99, cheap enough that hedging stays under
	// the 5% extra-call bar. The quick run has too few requests for a
	// single slow event to sit at its p99 index, so it slows more often.
	requests, nth := 200, 13
	if *quick {
		requests, nth = 60, 7
	}

	catalog := func(slow bool) *ucqn.Catalog {
		mk := func(slowT bool) *ucqn.Catalog {
			cat, err := ucqn.DelayedCatalog(mustCatalog(in, ps), base)
			if err != nil {
				panic(err)
			}
			if !slowT {
				return cat
			}
			var srcs []ucqn.Source
			for _, name := range cat.Names() {
				src := cat.Source(name)
				if name == "T" {
					src = &slowEveryNth{Source: src, n: nth, extra: 150 * time.Millisecond}
				}
				srcs = append(srcs, src)
			}
			cat, err = ucqn.NewCatalog(srcs...)
			if err != nil {
				panic(err)
			}
			return cat
		}
		cat, _, err := ucqn.ReplicaCatalog(ucqn.ReplicaConfig{Policy: ucqn.RoundRobin{}},
			mk(false), mk(false), mk(slow))
		if err != nil {
			panic(err)
		}
		return cat
	}
	pctl := func(lat []time.Duration, p float64) time.Duration {
		s := append([]time.Duration(nil), lat...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[int(p*float64(len(s)-1))]
	}

	fmt.Printf("replicas=3 base latency=%s slow replica: +150ms every %dth call requests=%d\n", base, nth, requests)
	fmt.Printf("%-22s %12s %12s %10s %8s %6s %12s\n", "mode", "p50", "p99", "src-calls", "hedges", "wins", "mean-latency")
	for _, mode := range []struct {
		name  string
		slow  bool
		hedge bool
	}{
		{"healthy", false, false},
		{"slow-replica", true, false},
		{"slow-replica+hedging", true, true},
	} {
		cat := catalog(mode.slow)
		rt := ucqn.NewRuntime()
		rt.Retry.BaseDelay = 0
		var opts []ucqn.ExecOption
		opts = append(opts, ucqn.WithRuntime(rt), ucqn.WithProfile())
		if mode.hedge {
			opts = append(opts, ucqn.WithHedging(ucqn.HedgePolicy{Delay: 2 * base}))
		}
		var lat []time.Duration
		calls, hedges, wins := 0, 0, 0
		for i := 0; i < requests; i++ {
			start := time.Now()
			res, err := ucqn.Exec(context.Background(), q, ps, cat, opts...)
			if err != nil {
				panic(err)
			}
			if _, err := res.Rel(); err != nil {
				panic(err)
			}
			lat = append(lat, time.Since(start))
			prof, _ := res.Profile()
			calls += prof.TotalCalls()
			hedges += prof.HedgedCalls()
			wins += prof.HedgeWins()
		}
		// Per-source latency metering (satellite of the replica runtime):
		// the catalog's aggregated stats now carry observed call latency.
		st := cat.TotalStats()
		fmt.Printf("%-22s %12s %12s %10d %8d %6d %12s\n", mode.name,
			pctl(lat, 0.50).Round(time.Microsecond), pctl(lat, 0.99).Round(time.Microsecond),
			calls, hedges, wins, st.MeanLatency().Round(time.Microsecond))
	}
	fmt.Println("expected: the slow replica drives the unhedged p99 to ≥5× healthy; hedging restores p99 to ≤2× healthy for <5% extra calls; mean source latency stays near the base round trip")
}

// --- E25 ----------------------------------------------------------------

func e25() {
	// Columnar batch evaluation vs the historical map-based evaluator
	// (Runtime.MapEval) on a join-heavy workload: wide bindings fan out
	// through three joins and a negated membership filter while call
	// memoization keeps the distinct source calls in the dozens, so
	// nearly all the time is per-binding evaluator overhead — the cost
	// the columnar batches exist to remove.
	baseRows, fanout := 4000, 8
	if *quick {
		baseRows = 800
	}
	q := ucqn.MustParseQuery(`Q(z, y) :- R(x, a, b, c, d, e, z), S(z, w), T(w, y), not N(z).`)
	ps := ucqn.MustParsePatterns(`R^ooooooo S^io T^io N^i`)
	in := ucqn.NewInstance()
	const keys = 20
	for i := 0; i < baseRows; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i),
			fmt.Sprintf("a%d", i%7), fmt.Sprintf("b%d", i%11), fmt.Sprintf("c%d", i%13),
			fmt.Sprintf("d%d", i%3), fmt.Sprintf("e%d", i%5),
			fmt.Sprintf("z%d", i%keys))
	}
	for z := 0; z < keys; z++ {
		for j := 0; j < fanout; j++ {
			in.MustAdd("S", fmt.Sprintf("z%d", z), fmt.Sprintf("w%d", j))
		}
	}
	for j := 0; j < fanout; j++ {
		in.MustAdd("T", fmt.Sprintf("w%d", j), fmt.Sprintf("y%d", j))
	}
	for z := 0; z < keys; z += 4 {
		in.MustAdd("N", fmt.Sprintf("z%d", z))
	}

	measure := func(rt *ucqn.Runtime) (best time.Duration, allocs float64, calls int, rel *ucqn.Rel) {
		const reps = 5
		var ms0, ms1 runtime.MemStats
		for r := 0; r < reps; r++ {
			cat := mustCatalog(in, ps)
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			got, err := rt.Answer(context.Background(), q, ps, cat)
			el := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if err != nil {
				panic(err)
			}
			if r == 0 || el < best {
				best = el
			}
			allocs = float64(ms1.Mallocs - ms0.Mallocs)
			calls, rel = cat.TotalStats().Calls, got
		}
		return
	}

	mapRT := ucqn.NewRuntime()
	mapRT.MapEval = true
	colRT := ucqn.NewRuntime()
	mapBest, mapAllocs, mapCalls, mapRel := measure(mapRT)
	colBest, colAllocs, colCalls, colRel := measure(colRT)

	identical := mapRel.Len() == colRel.Len()
	for i, rows := 0, mapRel.Rows(); identical && i < len(rows); i++ {
		identical = rows[i].Key() == colRel.Rows()[i].Key()
	}
	rows := baseRows * fanout
	speedup := float64(mapBest) / float64(colBest)
	fmt.Printf("%-10s %12s %12s %8s %8s %8s\n", "evaluator", "total", "allocs/op", "calls", "answers", "rows")
	fmt.Printf("%-10s %12s %12.0f %8d %8d %8d\n", "map",
		mapBest.Round(time.Microsecond), mapAllocs, mapCalls, mapRel.Len(), rows)
	fmt.Printf("%-10s %12s %12.0f %8d %8d %8d\n", "columnar",
		colBest.Round(time.Microsecond), colAllocs, colCalls, colRel.Len(), rows)
	fmt.Printf("speedup: %.1fx, byte-identical: %v\n", speedup, identical)
	fmt.Println("expected: identical calls and answers; at full size the columnar hot loop wins ≥5× with a fraction of the allocations")

	if *benchOut != "" {
		rep := server.ColumnarReport{
			Experiment:          "E25",
			Config:              server.ColumnarConfig{BaseRows: baseRows, Fanout: fanout},
			Rows:                rows,
			Answers:             colRel.Len(),
			MapMS:               float64(mapBest.Nanoseconds()) / 1e6,
			ColumnarMS:          float64(colBest.Nanoseconds()) / 1e6,
			Speedup:             speedup,
			MapCalls:            mapCalls,
			ColumnarCalls:       colCalls,
			MapAllocsPerOp:      mapAllocs,
			ColumnarAllocsPerOp: colAllocs,
			ByteIdentical:       identical,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			panic(err)
		}
		data = append(data, '\n')
		if err := server.ValidateBenchReport(data); err != nil {
			panic(err)
		}
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
}

// --- E26 ----------------------------------------------------------------

func e26() {
	// Cold start vs warm restart through the serving layer: a server
	// opens over an empty persistence directory, serves the fixture mix
	// twice (cold pass pays the source calls; steady pass is the
	// answer-cache regime), shuts down, and a fresh server — new
	// catalogs, same directory — serves the mix again. The warm pass
	// must hit the steady-state call count: the append-only log, not
	// the sources, repopulated the cache. An artificial per-call delay
	// makes the saved round trips visible in the p50.
	delayMS := 2.0
	if *quick {
		delayMS = 1.0
	}
	dir, err := os.MkdirTemp("", "ucqn-e26-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	rep, err := server.RunWarmRestart(context.Background(), dir,
		server.WarmRestartConfig{Tenants: 3, DelayMS: delayMS})
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-8s %10s %12s %12s\n", "pass", "calls", "p50", "mean")
	fmt.Printf("%-8s %10d %12s %12s\n", "cold", rep.ColdCalls, fmtMS(rep.ColdP50MS), fmtMS(rep.ColdMeanMS))
	fmt.Printf("%-8s %10d %12s %12s\n", "steady", rep.SteadyCalls, fmtMS(rep.SteadyP50MS), fmtMS(rep.SteadyMeanMS))
	fmt.Printf("%-8s %10d %12s %12s\n", "warm", rep.WarmCalls, fmtMS(rep.WarmP50MS), fmtMS(rep.WarmMeanMS))
	fmt.Printf("restart recovery: %d entries warm-loaded (%d bytes), %d dropped; sound: %v\n",
		rep.PersistLoads, rep.PersistBytes, rep.PersistDrops, rep.Sound)
	fmt.Println("expected: the warm restart matches the steady-state call count (≈0) with a mean latency orders of magnitude under cold; recovery loads every persisted entry and every answer verifies against ground truth")

	if *benchOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			panic(err)
		}
		data = append(data, '\n')
		if err := server.ValidateBenchReport(data); err != nil {
			panic(err)
		}
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
}

// --- E27 ----------------------------------------------------------------

func e27() {
	// Batched pushdown through the SQL adapter: a fan-out join drives a
	// deduplicated binding group into a SQL-backed relation, once with
	// the adapter's BatchSource capability hidden (one statement per
	// binding) and once with it live (one IN statement per chunk). The
	// backend's own query counter is the round-trip ground truth, and an
	// injected per-statement latency makes the saving visible in the
	// percentiles — as it would be on a real network.
	cfg := server.BatchPushdownConfig{Bindings: 256, Fanout: 4, Iters: 7, LatencyMS: 1}
	if *quick {
		cfg.Iters = 2
	}
	rep, err := server.RunBatchPushdown(context.Background(), cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-9s %8s %12s %14s %12s %12s\n", "mode", "calls", "round trips", "bytes on wire", "p50", "p99")
	fmt.Printf("%-9s %8d %12d %14d %12s %12s\n", "per-call",
		rep.PerCall.Calls, rep.PerCall.RoundTrips, rep.PerCall.BytesOnWire, fmtMS(rep.PerCall.P50MS), fmtMS(rep.PerCall.P99MS))
	fmt.Printf("%-9s %8d %12d %14d %12s %12s\n", "batched",
		rep.Batched.Calls, rep.Batched.RoundTrips, rep.Batched.BytesOnWire, fmtMS(rep.Batched.P50MS), fmtMS(rep.Batched.P99MS))
	fmt.Printf("bindings: %d  answers: %d  round-trip ratio: %.0fx  equal answers: %v\n",
		rep.Bindings, rep.Answers, rep.RoundTripRatio, rep.EqualAnswers)
	fmt.Println("expected: the batched mode services the whole binding group in a handful of IN statements (≥10x fewer round trips), moves fewer wire bytes, and returns byte-identical answers")

	if *benchOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			panic(err)
		}
		data = append(data, '\n')
		if err := server.ValidateBenchReport(data); err != nil {
			panic(err)
		}
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
}

// --- E28 ----------------------------------------------------------------

func e28() {
	// Cache-fleet sharing: replica A (the writer) opens over an empty
	// shared directory and serves the fixture mix twice (cold, then
	// steady); replica B joins the live fleet as a reader, refreshes
	// once, and serves the mix at A's steady-state source-call count —
	// the shared directory, not B's sources, pays for the pass. Then an
	// invalidation issued on B (through its durable inbox, not the
	// log) must re-derive the tenant on BOTH replicas.
	delayMS := 2.0
	if *quick {
		delayMS = 1.0
	}
	dir, err := os.MkdirTemp("", "ucqn-e28-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	rep, err := server.RunFleetShare(context.Background(), dir,
		server.FleetShareConfig{Tenants: 3, DelayMS: delayMS})
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-10s %10s %12s %12s\n", "pass", "calls", "p50", "mean")
	fmt.Printf("%-10s %10d %12s %12s\n", "A cold", rep.ColdCalls, fmtMS(rep.ColdP50MS), fmtMS(rep.ColdMeanMS))
	fmt.Printf("%-10s %10d %12s %12s\n", "A steady", rep.SteadyCalls, fmtMS(rep.SteadyP50MS), fmtMS(rep.SteadyMeanMS))
	fmt.Printf("%-10s %10d %12s %12s\n", "B warm", rep.WarmCalls, fmtMS(rep.WarmP50MS), fmtMS(rep.WarmMeanMS))
	fmt.Printf("roles: A=%s B=%s  reader-issued invalidation gen %d re-derived: B paid %d calls, A paid %d; sound: %v\n",
		rep.RoleA, rep.RoleB, rep.InvalidationGen,
		rep.PostInvalidationCallsB, rep.PostInvalidationCallsA, rep.Sound)
	fmt.Println("expected: replica B's warm pass matches A's steady-state call count (≈0) — the fleet directory serviced it — and the fleet-wide invalidation forces both replicas back to the sources for exactly the killed tenant")

	if *benchOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			panic(err)
		}
		data = append(data, '\n')
		if err := server.ValidateBenchReport(data); err != nil {
			panic(err)
		}
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
}

// fmtMS renders a millisecond float at a readable precision.
func fmtMS(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Microsecond).String()
}

// mustCatalog builds a catalog or panics (paperbench helper).
func mustCatalog(in *ucqn.Instance, ps *ucqn.PatternSet) *ucqn.Catalog {
	cat, err := in.Catalog(ps)
	if err != nil {
		panic(err)
	}
	return cat
}
