// Command ucqnsh is an interactive shell for exploring queries over
// sources with limited access patterns: declare patterns and facts,
// stage a UCQ¬ query, then ask for feasibility (Figure 3), the PLAN*
// decomposition (Figure 2), or an ANSWER* run (Figure 4).
//
//	$ ucqnsh
//	> :patterns B^ioo B^oio C^oo L^o
//	> :fact B("i1", "knuth", "taocp"). C("i1", "knuth").
//	> Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).
//	> :feasible
//	> :answer
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Repl(os.Stdin, os.Stdout, os.Stderr))
}
