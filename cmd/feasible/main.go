// Command feasible decides executability, orderability, and feasibility
// of a UCQ¬ query under access patterns (Figures 1–3 of Nash &
// Ludäscher, EDBT 2004).
//
// Usage:
//
//	feasible -patterns 'B^ioo B^oio C^oo L^o' [-query file.dlog] [-verbose]
//
// The query is read from -query or from standard input, one or more
// Datalog-style rules:
//
//	Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).
//
// Exit status: 0 when feasible, 1 when infeasible, 2 on usage errors.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Feasible(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
