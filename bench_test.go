package ucqn

// One testing.B benchmark per experiment of DESIGN.md (E1–E23 and
// E25; E24 is the serving harness, cmd/ucqnload), plus
// microbenchmarks for the extension subsystems. `go test -bench=.
// -benchmem` regenerates every number; cmd/paperbench prints the same
// series as human-readable tables.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lichang"
	"repro/internal/logic"
	"repro/internal/sources"
	"repro/internal/workload"
)

// E1: ANSWERABLE on reversed chains (quadratic, Prop. 2).
func BenchmarkE1Answerable(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		q, ps := workload.ChainQuery(n)
		rev := workload.Reversed(q)
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.AnswerablePart(rev, ps)
			}
		})
	}
}

// E1: the orderability check (Cor. 3).
func BenchmarkE1Orderable(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		q, ps := workload.ChainQuery(n)
		rev := workload.Reversed(q)
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Orderable(rev, ps)
			}
		})
	}
}

// E2: PLAN* on reversed chains (quadratic).
func BenchmarkE2PlanStar(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		q, ps := workload.ChainQuery(n)
		rev := logic.AsUnion(workload.Reversed(q))
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ComputePlans(rev, ps)
			}
		})
	}
}

// E3: FEASIBLE on the hard case-split family (containment needed) vs the
// easy family (fast certificate).
func BenchmarkE3FeasibleHard(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		u, ps := workload.CaseSplitFamily(n)
		b.Run(fmt.Sprintf("split-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Feasible(u, ps)
			}
		})
	}
}

func BenchmarkE3FeasibleEasy(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		u, ps := workload.EasyFamily(n)
		b.Run(fmt.Sprintf("split-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Feasible(u, ps)
			}
		})
	}
}

// E4: ANSWER* end to end on the Example 4 view over random instances.
func BenchmarkE4AnswerStar(b *testing.B) {
	u := MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := MustParsePatterns(`S^o R^oo B^oi T^oo`)
	s := workload.Schema{Relations: []workload.RelDef{
		{Name: "R", Arity: 2}, {Name: "S", Arity: 1}, {Name: "B", Arity: 2}, {Name: "T", Arity: 2},
	}}
	for _, tuples := range []int{10, 100} {
		g := workload.New(42)
		in := engine.NewInstance()
		if err := in.LoadFacts(g.Facts(s, tuples, tuples)); err != nil {
			b.Fatal(err)
		}
		cat := in.MustCatalog(ps)
		b.Run(fmt.Sprintf("tuples-%d", tuples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunAnswerStar(u, ps, cat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E5: the paper's examples through FEASIBLE (the classification table).
func BenchmarkE5PaperExamples(b *testing.B) {
	for _, ex := range workload.PaperExamples() {
		b.Run(ex.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Feasible(ex.Query, ex.Patterns)
			}
		})
	}
}

// E6: the ans(Q)-minimality pipeline (generate, reorder, extend, check
// Q ⊑ ans(Q) ⊑ E).
func BenchmarkE6AnsMinimality(b *testing.B) {
	g := workload.New(7)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.5, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := g.UCQ(s, 2, cfg)
		ordered, ok := core.ReorderUCQ(e, ps)
		if !ok {
			continue
		}
		q := logic.UCQ{Rules: []logic.CQ{ordered.Rules[0].Clone()}}
		q.Rules[0].Body = append(q.Rules[0].Body, g.CQ(s, cfg).Body...)
		a := core.AnswerableUCQ(q, ps).DropFalseRules()
		if a.HasNull() {
			continue
		}
		if !Contained(q, a) || !Contained(a, ordered) {
			b.Fatal("theorem 16 violated")
		}
	}
}

// E7: the five feasibility algorithms on the same UCQ workload.
func BenchmarkE7Baselines(b *testing.B) {
	g := workload.New(13)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.55, 2)
	cfg := workload.QueryConfig{PosLits: 4, NegLits: 0, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	queries := make([]logic.UCQ, 64)
	for i := range queries {
		queries[i] = g.UCQ(s, 3, cfg)
	}
	b.Run("FEASIBLE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Feasible(queries[i%len(queries)], ps)
		}
	})
	b.Run("UCQstable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lichang.UCQStable(queries[i%len(queries)], ps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("UCQstable-star", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lichang.UCQStableStar(queries[i%len(queries)], ps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E8: domain enumeration fixpoint cost.
func BenchmarkE8DomainEnum(b *testing.B) {
	for _, tuples := range []int{20, 100} {
		g := workload.New(21)
		s := workload.Schema{Relations: []workload.RelDef{
			{Name: "R", Arity: 2}, {Name: "S", Arity: 1}, {Name: "T", Arity: 2},
		}}
		in := engine.NewInstance()
		if err := in.LoadFacts(g.Facts(s, tuples, tuples/2)); err != nil {
			b.Fatal(err)
		}
		ps := MustParsePatterns(`R^oo S^o T^io`)
		cat := in.MustCatalog(ps)
		b.Run(fmt.Sprintf("tuples-%d", tuples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.EnumerateDomain(cat, nil, 1_000_000)
			}
		})
	}
}

// E9: satisfiability check (Prop. 8) on long bodies.
func BenchmarkE9Satisfiable(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		q, _ := workload.ChainQuery(n)
		q.Body = append(q.Body, logic.Neg(q.Body[0].Atom))
		u := logic.AsUnion(q)
		b.Run(fmt.Sprintf("lits-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Satisfiable(u)
			}
		})
	}
}

// E10: the Theorem 18 reduction pipeline (construct + decide).
func BenchmarkE10Reduction(b *testing.B) {
	g := workload.New(31)
	s := g.Schema(4, 1, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 0, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	ps := make([]logic.UCQ, 32)
	qs := make([]logic.UCQ, 32)
	for i := range ps {
		ps[i] = g.UCQ(s, 2, cfg)
		qs[i] = g.UCQ(s, 2, cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, q := ps[i%len(ps)], qs[i%len(qs)]
		red, rps, err := ReduceContToFeasible(p, q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := FeasibleLimited(red, rps, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// E11: the estimate ladder end to end (ANSWER* + domain improvement +
// ground truth).
func BenchmarkE11Ladder(b *testing.B) {
	g := workload.New(51)
	s := workload.Schema{Relations: []workload.RelDef{
		{Name: "R", Arity: 2}, {Name: "S", Arity: 1}, {Name: "B", Arity: 2}, {Name: "T", Arity: 2},
	}}
	u := MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := MustParsePatterns(`S^o R^oo B^oi T^oo`)
	in := engine.NewInstance()
	if err := in.LoadFacts(g.Facts(s, 20, 10)); err != nil {
		b.Fatal(err)
	}
	cat := in.MustCatalog(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.RunAnswerStar(u, ps, cat)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := engine.ImproveUnder(res, ps, cat, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// E12: plan execution cost over metered sources as fan-out grows.
func BenchmarkE12SourceCalls(b *testing.B) {
	for _, n := range []int{2, 8} {
		q, ps := workload.StarQuery(n)
		in := engine.NewInstance()
		for x := 0; x < 40; x++ {
			xv := fmt.Sprintf("x%d", x)
			for i := 1; i <= n; i++ {
				in.MustAdd(fmt.Sprintf("R%d", i), xv, fmt.Sprintf("y%d_%d", i, x))
			}
			if x%2 == 0 {
				in.MustAdd("S", xv)
			}
		}
		cat := in.MustCatalog(ps)
		uq := logic.AsUnion(q)
		b.Run(fmt.Sprintf("fanout-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Answer(uq, ps, cat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E13: compile-time semantic optimization under inclusion dependencies.
func BenchmarkE13SemanticOptimizer(b *testing.B) {
	u := MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := MustParsePatterns(`S^o R^oo B^oi T^oo`)
	inds := MustParseINDs(`R[1] < S[0]`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := inds.Optimize(u)
		if !core.Feasible(opt, ps).Feasible {
			b.Fatal("optimized query must be feasible")
		}
	}
}

// E14: calls under ANSWERABLE order vs the call-minimizing order.
func BenchmarkE14OrderAblation(b *testing.B) {
	q := MustParseQuery(`Q(x, y) :- R1(x, w), R2(w, y), not L(x).`)
	ps := MustParsePatterns(`R1^oo R2^io L^i`)
	in := engine.NewInstance()
	for i := 0; i < 100; i++ {
		in.MustAdd("R1", fmt.Sprintf("x%d", i), fmt.Sprintf("w%d", i))
		in.MustAdd("R2", fmt.Sprintf("w%d", i), fmt.Sprintf("y%d", i))
		if i%10 != 0 {
			in.MustAdd("L", fmt.Sprintf("x%d", i))
		}
	}
	cat := in.MustCatalog(ps)
	ordered, _ := core.ReorderUCQ(q, ps)
	optimized, _ := core.OptimizeOrderUCQ(q, ps)
	b.Run("answerable-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Answer(ordered, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimized-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Answer(optimized, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E15: acyclic containment fast path on the chain-into-tree family.
func BenchmarkE15AcyclicAblation(b *testing.B) {
	chain := func(n int) logic.CQ {
		q := logic.CQ{HeadPred: "Q"}
		for i := 0; i < n; i++ {
			q.Body = append(q.Body, logic.Pos(logic.NewAtom("E",
				logic.Var(fmt.Sprintf("x%d", i)), logic.Var(fmt.Sprintf("x%d", i+1)))))
		}
		return q
	}
	tree := func(depth int) logic.CQ {
		q := logic.CQ{HeadPred: "Q"}
		var rec func(node string, d int)
		rec = func(node string, d int) {
			if d == 0 {
				return
			}
			for _, side := range []string{"l", "r"} {
				child := node + side
				q.Body = append(q.Body, logic.Pos(logic.NewAtom("E", logic.Var(node), logic.Var(child))))
				rec(child, d-1)
			}
		}
		rec("t", depth)
		return q
	}
	for _, d := range []int{6, 8} {
		p := tree(d)
		q := logic.AsUnion(chain(d + 1))
		b.Run(fmt.Sprintf("fast-depth-%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				containment.NewChecker(q).Contains(p)
			}
		})
		b.Run(fmt.Sprintf("slow-depth-%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := containment.NewChecker(q)
				c.DisableAcyclic = true
				c.Contains(p)
			}
		})
	}
}

// E16: source-call caching on a join with repeated lookup keys.
func BenchmarkE16CacheAblation(b *testing.B) {
	q := MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`)
	ps := MustParsePatterns(`R^oo T^io`)
	in := engine.NewInstance()
	for i := 0; i < 200; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%10))
	}
	for z := 0; z < 10; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	b.Run("plain", func(b *testing.B) {
		cat := in.MustCatalog(ps)
		for i := 0; i < b.N; i++ {
			if _, err := engine.Answer(q, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cat, _, err := CachedCatalog(in.MustCatalog(ps))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := engine.Answer(q, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E17: greedy vs cost-based join order, measured in real source calls.
func BenchmarkE17CostOrder(b *testing.B) {
	q := MustParseQuery(`Q(x) :- Big(x, w), Small(x, v).`)
	ps := MustParsePatterns(`Big^oo Big^io Small^oo Small^io`)
	in := engine.NewInstance()
	for i := 0; i < 500; i++ {
		in.MustAdd("Big", fmt.Sprintf("x%d", i), fmt.Sprintf("w%d", i))
	}
	for i := 0; i < 5; i++ {
		in.MustAdd("Small", fmt.Sprintf("x%d", i), fmt.Sprintf("v%d", i))
	}
	st := core.StatsFromCardinalities(map[string]int{"Big": 500, "Small": 5})
	greedy, _ := core.OptimizeOrderUCQ(q, ps)
	costed, _ := core.CostOrderUCQ(q, ps, st)
	cat := in.MustCatalog(ps)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Answer(greedy, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cost-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Answer(costed, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// GAV unfolding microbenchmark (mediator front end, Section 6).
func BenchmarkMediatorUnfold(b *testing.B) {
	v := NewViews()
	if err := v.Add(MustParseQuery("G(x, y) :- S(x, z), T(z, y).\nG(x, y) :- D(x, y).")); err != nil {
		b.Fatal(err)
	}
	if err := v.Add(MustParseQuery(`M(x) :- W(x).`)); err != nil {
		b.Fatal(err)
	}
	q := MustParseQuery(`Q(a) :- G(a, c), G(c, d), not M(d).`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Unfold(q); err != nil {
			b.Fatal(err)
		}
	}
}

// E18: adornment strategy (selection pushdown) measured in transferred
// tuples.
func BenchmarkE18AdornStrategy(b *testing.B) {
	q := MustParseRule(`Q(x, y) :- R(x, z), T(z, y).`)
	ps := MustParsePatterns(`R^oo T^io T^oo`)
	in := engine.NewInstance()
	for i := 0; i < 10; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
	}
	for i := 0; i < 1000; i++ {
		in.MustAdd("T", fmt.Sprintf("z%d", i), fmt.Sprintf("y%d", i))
	}
	cat := in.MustCatalog(ps)
	for _, strat := range []struct {
		name string
		s    access.AdornStrategy
	}{{"pushdown", access.PreferMostInputs}, {"scan", access.PreferFewestInputs}} {
		steps, ok := access.AdornInOrderPrefer(q.Body, ps, strat.s)
		if !ok {
			b.Fatal("not executable")
		}
		b.Run(strat.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.AnswerSteps(q, steps, cat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E19: the deduplicating concurrent runtime vs the historical
// per-binding loop. The benchmark asserts the acceptance property up
// front — strictly fewer source calls with an identical answer set —
// then times both runtimes.
func BenchmarkE19RuntimeDedup(b *testing.B) {
	q := MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`)
	ps := MustParsePatterns(`R^oo T^io`)
	in := engine.NewInstance()
	for i := 0; i < 400; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%10))
	}
	for z := 0; z < 10; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}

	seqCat := in.MustCatalog(ps)
	seqAns, err := SequentialRuntime().Answer(context.Background(), q, ps, seqCat)
	if err != nil {
		b.Fatal(err)
	}
	dedCat := in.MustCatalog(ps)
	dedAns, err := NewRuntime().Answer(context.Background(), q, ps, dedCat)
	if err != nil {
		b.Fatal(err)
	}
	if !seqAns.Equal(dedAns) {
		b.Fatal("answer sets differ between runtimes")
	}
	seqCalls, dedCalls := seqCat.TotalStats().Calls, dedCat.TotalStats().Calls
	if dedCalls >= seqCalls {
		b.Fatalf("dedup must issue strictly fewer calls: %d vs %d", dedCalls, seqCalls)
	}
	b.Logf("source calls: sequential=%d dedup=%d", seqCalls, dedCalls)

	for _, cfg := range []struct {
		name string
		rt   *Runtime
	}{{"sequential", SequentialRuntime()}, {"dedup", NewRuntime()}} {
		b.Run(cfg.name, func(b *testing.B) {
			cat := in.MustCatalog(ps)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.rt.Answer(context.Background(), q, ps, cat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E20: the streaming pipeline vs materializing evaluation over sources
// with a simulated network round trip. The benchmark asserts the
// acceptance properties up front — a byte-identical drained answer set,
// no increase in total source calls, and a strictly earlier first tuple
// — then times both modes end to end.
func BenchmarkE20StreamingPipeline(b *testing.B) {
	q := MustParseQuery(`Q(x, y) :- R(x, z), S(z, w), T(w, y).`)
	ps := MustParsePatterns(`R^oo S^io T^io`)
	in := engine.NewInstance()
	for i := 0; i < 120; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
		in.MustAdd("S", fmt.Sprintf("z%d", i), fmt.Sprintf("w%d", i))
		in.MustAdd("T", fmt.Sprintf("w%d", i), fmt.Sprintf("y%d", i))
	}
	rt := NewRuntime()
	rt.BatchSize = 16
	delayed := func() *Catalog {
		cat, err := DelayedCatalog(in.MustCatalog(ps), 200*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		return cat
	}

	matCat := delayed()
	matStart := time.Now()
	matAns, err := rt.Answer(context.Background(), q, ps, matCat)
	if err != nil {
		b.Fatal(err)
	}
	matElapsed := time.Since(matStart)

	strCat := delayed()
	strStart := time.Now()
	s, err := rt.Stream(context.Background(), q, ps, strCat)
	if err != nil {
		b.Fatal(err)
	}
	if !s.Next() {
		b.Fatalf("stream produced no tuples: %v", s.Err())
	}
	ttft := time.Since(strStart)
	strAns := engine.NewRel()
	strAns.Add(s.Tuple())
	for s.Next() {
		strAns.Add(s.Tuple())
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}

	matRows, strRows := matAns.Rows(), strAns.Rows()
	if len(matRows) != len(strRows) {
		b.Fatalf("answer counts differ: materialized=%d streamed=%d", len(matRows), len(strRows))
	}
	for i := range matRows {
		if matRows[i].Key() != strRows[i].Key() {
			b.Fatalf("row %d differs: materialized=%s streamed=%s", i, matRows[i], strRows[i])
		}
	}
	matCalls, strCalls := matCat.TotalStats().Calls, strCat.TotalStats().Calls
	if strCalls > matCalls {
		b.Fatalf("streaming must not issue more calls: %d vs %d", strCalls, matCalls)
	}
	if ttft >= matElapsed {
		b.Fatalf("first streamed tuple (%v) must beat the materialized total (%v)", ttft, matElapsed)
	}
	b.Logf("calls: materialized=%d streamed=%d; first tuple %v vs materialized total %v",
		matCalls, strCalls, ttft.Round(time.Microsecond), matElapsed.Round(time.Microsecond))

	b.Run("materialized", func(b *testing.B) {
		cat := delayed()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rt.Answer(context.Background(), q, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		cat := delayed()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := rt.Stream(context.Background(), q, ps, cat)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Drain(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E21: graceful degradation with a dead source. The benchmark asserts
// the acceptance properties up front — partial mode answers with the
// healthy disjunct and names the dead source, strict mode errors, and
// the circuit breaker caps the dead source's traffic at its window
// instead of paying the full retry schedule in every disjunct that
// touches it — then times a degraded run with bare retries against one
// behind the breaker.
func BenchmarkE21Degradation(b *testing.B) {
	const deadRules = 8
	src := "Q(x) :- R(x).\n"
	for i := 0; i < deadRules; i++ {
		src += fmt.Sprintf("Q(x) :- S(%q, x).\n", fmt.Sprintf("c%d", i))
	}
	q := MustParseQuery(src)
	ps := MustParsePatterns(`R^o S^io`)
	in := NewInstance()
	for i := 0; i < 40; i++ {
		in.MustAdd("R", fmt.Sprintf("r%d", i))
	}
	rt := func() *Runtime {
		rt := NewRuntime()
		rt.Concurrency = 1 // deterministic call counts for the assertions
		rt.Retry.MaxAttempts = 4
		rt.Retry.BaseDelay = 0
		return rt
	}
	// bareKill rebuilds the catalog with S permanently failing and no
	// breaker: every binding pays the full retry schedule.
	bareKill := func() (*Catalog, *FlakySource) {
		base := in.MustCatalog(ps)
		var srcs []Source
		var flaky *FlakySource
		for _, name := range base.Names() {
			src := base.Source(name)
			if name == "S" {
				flaky = NewFlakySource(src, FlakyConfig{FailEveryN: 1})
				src = flaky
			}
			srcs = append(srcs, src)
		}
		cat, err := NewCatalog(srcs...)
		if err != nil {
			b.Fatal(err)
		}
		return cat, flaky
	}

	want, err := execAnswer(MustParseQuery(`Q(x) :- R(x).`), ps, in.MustCatalog(ps))
	if err != nil {
		b.Fatal(err)
	}

	// Strict mode must surface the failure.
	strictCat, _, _ := killSource(b, in, ps, "S")
	if _, err := Exec(context.Background(), q, ps, strictCat, WithRuntime(rt())); err == nil {
		b.Fatal("strict Exec must fail with a dead source")
	}

	// Bare retries: every distinct binding retries to exhaustion.
	bareCat, bareFlaky := bareKill()
	res, err := Exec(context.Background(), q, ps, bareCat, WithRuntime(rt()), WithPartialResults())
	if err != nil {
		b.Fatal(err)
	}
	if rel, err := res.Rel(); err != nil || !rel.Equal(want) {
		b.Fatalf("bare degraded answer = %v/%v, want the healthy disjunct's %s", rel, err, want)
	}
	bareCalls := bareFlaky.Injected()
	if min := deadRules * 4; bareCalls < min {
		b.Fatalf("bare retries absorbed %d dead-source calls, expected at least rules×attempts = %d", bareCalls, min)
	}

	// Breaker: the dead source's traffic is capped at the window.
	brkCat, brkFlaky, brk := killSource(b, in, ps, "S")
	res, err = Exec(context.Background(), q, ps, brkCat, WithRuntime(rt()), WithPartialResults())
	if err != nil {
		b.Fatal(err)
	}
	if rel, err := res.Rel(); err != nil || !rel.Equal(want) {
		b.Fatalf("breaker degraded answer = %v/%v, want the healthy disjunct's %s", rel, err, want)
	}
	inc, ok := res.Incompleteness()
	if !ok || inc.Complete() {
		b.Fatalf("incompleteness = %+v/%v, want the dropped disjunct recorded", inc, ok)
	}
	if got := inc.FailedSources(); len(got) != 1 || got[0] != "S" {
		b.Fatalf("FailedSources = %v, want [S]", got)
	}
	brkCalls := brkFlaky.Injected()
	if brkCalls > 4 {
		b.Fatalf("breaker let %d calls through, want at most its window (4)", brkCalls)
	}
	if brk.State() != BreakerOpen {
		b.Fatalf("breaker state = %v, want open", brk.State())
	}
	b.Logf("dead-source calls: bare=%d breaker=%d (window 4)", bareCalls, brkCalls)

	b.Run("bare-retries", func(b *testing.B) {
		cat, _ := bareKill()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Exec(context.Background(), q, ps, cat, WithRuntime(rt()), WithPartialResults())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Rel(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("breaker", func(b *testing.B) {
		cat, _, _ := killSource(b, in, ps, "S")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Exec(context.Background(), q, ps, cat, WithRuntime(rt()), WithPartialResults())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Rel(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Parallel vs sequential rule evaluation on a wide union.
func BenchmarkAnswerParallel(b *testing.B) {
	in := engine.NewInstance()
	var src, patSrc string
	for i := 0; i < 16; i++ {
		for j := 0; j < 200; j++ {
			in.MustAdd(fmt.Sprintf("R%d", i), fmt.Sprintf("v%d_%d", i, j))
		}
		src += fmt.Sprintf("Q(x) :- R%d(x).\n", i)
		patSrc += fmt.Sprintf("R%d^o ", i)
	}
	u := MustParseQuery(src)
	ps := MustParsePatterns(patSrc)
	cat := in.MustCatalog(ps)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Answer(u, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.AnswerParallel(u, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Program compilation of a three-level hierarchy.
func BenchmarkProgramCompile(b *testing.B) {
	src := `
		L1(x) :- E1(x).
		L1(x) :- E2(x).
		L2(x) :- L1(x), E3(x).
		L3(x, y) :- L2(x), L2(y), E4(x, y).
	`
	parsed, err := ParseRules(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewProgram()
		for _, r := range parsed {
			if err := p.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Compile("L3"); err != nil {
			b.Fatal(err)
		}
	}
}

// Chase-based satisfiability under a dependency chain.
func BenchmarkChaseSatisfiable(b *testing.B) {
	inds := MustParseINDs(`R[1] < S[0]; S[0] < T[0]`)
	q := MustParseRule(`Q(x) :- R(x, z), not T(z).`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inds.SatisfiableUnder(q) {
			b.Fatal("must be unsatisfiable under the chain")
		}
	}
}

// Witness construction and verification for a containment that needs
// the negative-literal recursion.
func BenchmarkExplainAndVerify(b *testing.B) {
	p := MustParseRule(`Q(x) :- R(x).`)
	q := MustParseQuery("Q(x) :- R(x), not S(x).\nQ(x) :- R(x), S(x).")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, ok := ExplainContained(p, q)
		if !ok {
			b.Fatal("containment expected")
		}
		if err := VerifyWitness(p, q, w); err != nil {
			b.Fatal(err)
		}
	}
}

// Containment microbenchmarks: the Π₂ᴾ engine on its classic inputs.
func BenchmarkContainmentCQ(b *testing.B) {
	p := MustParseRule(`Q(x) :- E(x, y), E(y, z), E(z, x).`)
	q := MustParseQuery(`Q(x) :- E(x, y), E(y, z).`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contained(logic.AsUnion(p), q)
	}
}

func BenchmarkContainmentCaseSplit(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		u, _ := workload.CaseSplitFamily(n)
		p := MustParseRule(`Q(x) :- R(x).`)
		b.Run(fmt.Sprintf("split-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Contained(logic.AsUnion(p), u)
			}
		})
	}
}

// e22Query is one distinct request of the E22 Zipf workload: a query
// variant plus the index of the paper-example catalog it runs against.
type e22Query struct {
	q  Query
	ps *PatternSet
	ci int
}

// e22Workload builds the distinct request pool: every paper example's
// executable form together with its α-renamed and literal-padded
// variants (textually different, semantically identical — the plan
// cache must collapse them), deterministically shuffled so the Zipf
// head is not biased toward one example.
func e22Workload() ([]e22Query, int) {
	var out []e22Query
	examples := 0
	for _, ex := range workload.PaperExamples() {
		u, ok := smokeQuery(ex)
		if !ok {
			continue
		}
		for _, v := range cacheVariants(u, "z") {
			out = append(out, e22Query{q: v, ps: ex.Patterns, ci: examples})
		}
		examples++
	}
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, examples
}

// e22Catalogs builds fresh per-example catalogs behind a per-call
// latency — rebuilt per mode so every mode starts with cold sources and
// zeroed meters.
func e22Catalogs(tb testing.TB, examples int, delay time.Duration) []*Catalog {
	tb.Helper()
	cats := make([]*Catalog, 0, examples)
	for _, ex := range workload.PaperExamples() {
		if _, ok := smokeQuery(ex); !ok {
			continue
		}
		cat, err := DelayedCatalog(paperInstance(ex.Patterns).MustCatalog(ex.Patterns), delay)
		if err != nil {
			tb.Fatal(err)
		}
		cats = append(cats, cat)
	}
	return cats
}

// e22Seq draws the request sequence: Zipf-distributed indices (s≈1, the
// repeated-workload regime — roughly 90% of requests repeat an earlier
// one), the same sequence for every mode.
func e22Seq(distinct, requests int) []int {
	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 1.01, 1, uint64(distinct-1))
	seq := make([]int, requests)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}
	return seq
}

// e22Run replays the request sequence through one cache configuration
// (qc nil = off), returning per-request latencies and total source
// calls. want pins cross-mode correctness: nil slots are filled, others
// verified.
func e22Run(tb testing.TB, reqs []e22Query, cats []*Catalog, seq []int, qc *QueryCache, want []*Rel) ([]time.Duration, int) {
	tb.Helper()
	lat := make([]time.Duration, 0, len(seq))
	for _, idx := range seq {
		r := reqs[idx]
		var opts []ExecOption
		if qc != nil {
			opts = append(opts, WithQueryCache(qc))
		}
		start := time.Now()
		res, err := Exec(context.Background(), r.q, r.ps, cats[r.ci], opts...)
		if err != nil {
			tb.Fatal(err)
		}
		rel, err := res.Rel()
		if err != nil {
			tb.Fatal(err)
		}
		lat = append(lat, time.Since(start))
		if want[idx] == nil {
			want[idx] = rel
		} else if !rel.Equal(want[idx]) {
			tb.Fatalf("request %d: answer diverged across modes", idx)
		}
	}
	calls := 0
	for _, c := range cats {
		calls += c.TotalStats().Calls
	}
	return lat, calls
}

// pctl returns the p-quantile of the latency sample.
func pctl(lat []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(p*float64(len(s)-1))]
}

// E22: the semantic query cache under a Zipf-repeated workload — the
// acceptance numbers first (≥5× fewer source calls and a lower p50
// with the full cache; plan-cache hits for the α-renamed and padded
// variants), then per-mode subbenchmarks.
func BenchmarkE22QueryCache(b *testing.B) {
	reqs, examples := e22Workload()
	if examples == 0 {
		b.Fatal("no executable paper examples")
	}
	seq := e22Seq(len(reqs), 10*len(reqs))
	want := make([]*Rel, len(reqs))
	const delay = 200 * time.Microsecond

	offLat, offCalls := e22Run(b, reqs, e22Catalogs(b, examples, delay), seq, nil, want)

	planQC := NewQueryCache(QueryCacheOptions{DisableAnswers: true})
	_, planCalls := e22Run(b, reqs, e22Catalogs(b, examples, delay), seq, planQC, want)

	fullQC := NewQueryCache(QueryCacheOptions{})
	fullLat, fullCalls := e22Run(b, reqs, e22Catalogs(b, examples, delay), seq, fullQC, want)

	offP50, fullP50 := pctl(offLat, 0.50), pctl(fullLat, 0.50)
	b.Logf("requests=%d distinct=%d classes=%d", len(seq), len(reqs), examples)
	b.Logf("calls: off=%d plan-only=%d full=%d", offCalls, planCalls, fullCalls)
	b.Logf("p50: off=%s full=%s  p99: off=%s full=%s",
		offP50, fullP50, pctl(offLat, 0.99), pctl(fullLat, 0.99))
	b.Logf("full-cache stats: %+v", fullQC.Stats())

	if fullCalls*5 > offCalls {
		b.Fatalf("full cache made %d source calls, want ≤ off/5 = %d", fullCalls, offCalls/5)
	}
	if fullP50 >= offP50 {
		b.Fatalf("full-cache p50 %s not below uncached %s", fullP50, offP50)
	}
	st := fullQC.Stats()
	if st.PlanMisses != examples {
		b.Fatalf("plan cache built %d plans, want one per equivalence class (%d): variants must collapse", st.PlanMisses, examples)
	}
	if st.PlanHits != len(seq)-examples {
		b.Fatalf("plan hits = %d, want every other request (%d)", st.PlanHits, len(seq)-examples)
	}
	if ps := planQC.Stats(); ps.AnswerHits != 0 || ps.PlanHits == 0 {
		b.Fatalf("plan-only stats = %+v, want plan hits and no answer hits", ps)
	}

	modes := []struct {
		name string
		qc   func() *QueryCache
	}{
		{"off", func() *QueryCache { return nil }},
		{"plan-only", func() *QueryCache { return NewQueryCache(QueryCacheOptions{DisableAnswers: true}) }},
		{"full", func() *QueryCache { return NewQueryCache(QueryCacheOptions{}) }},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cats := e22Catalogs(b, examples, delay)
			qc := m.qc()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := reqs[seq[i%len(seq)]]
				var opts []ExecOption
				if qc != nil {
					opts = append(opts, WithQueryCache(qc))
				}
				res, err := Exec(context.Background(), r.q, r.ps, cats[r.ci], opts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Rel(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// e23Slow delays every nth call of the wrapped source by extra (on top
// of whatever latency the source itself has), honoring cancellation —
// the intermittently slow replica of the E23 tail-latency experiment.
type e23Slow struct {
	Source
	n     int
	extra time.Duration

	mu    sync.Mutex
	calls int
}

func (s *e23Slow) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]sources.Tuple, error) {
	s.mu.Lock()
	s.calls++
	slow := s.calls%s.n == 0
	s.mu.Unlock()
	if slow {
		t := time.NewTimer(s.extra)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return sources.CallWithContext(ctx, s.Source, p, inputs)
}

// e23Catalog builds the E23 catalog: every relation fronted by a
// three-replica set routed round-robin, each replica with a base
// per-call delay; when slow is set, one replica of T stalls an extra
// 150ms on every 13th of its calls.
func e23Catalog(b *testing.B, in *Instance, ps *PatternSet, base time.Duration, slow bool) *Catalog {
	b.Helper()
	mk := func(slowT bool) *Catalog {
		cat, err := DelayedCatalog(in.MustCatalog(ps), base)
		if err != nil {
			b.Fatal(err)
		}
		if !slowT {
			return cat
		}
		var srcs []Source
		for _, name := range cat.Names() {
			src := cat.Source(name)
			if name == "T" {
				src = &e23Slow{Source: src, n: 13, extra: 150 * time.Millisecond}
			}
			srcs = append(srcs, src)
		}
		cat, err = NewCatalog(srcs...)
		if err != nil {
			b.Fatal(err)
		}
		return cat
	}
	cat, _, err := ReplicaCatalog(ReplicaConfig{Policy: RoundRobin{}},
		mk(false), mk(false), mk(slow))
	if err != nil {
		b.Fatal(err)
	}
	return cat
}

// e23Run executes n sequential requests and returns each request's
// latency plus the run's launched-call and hedged-call totals.
func e23Run(b *testing.B, q Query, ps *PatternSet, cat *Catalog, rt *Runtime, n int, want *Rel) (lat []time.Duration, calls, hedges int) {
	b.Helper()
	for i := 0; i < n; i++ {
		start := time.Now()
		res, err := Exec(context.Background(), q, ps, cat, WithRuntime(rt), WithProfile())
		if err != nil {
			b.Fatal(err)
		}
		rel, err := res.Rel()
		if err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
		if !rel.Equal(want) {
			b.Fatalf("request %d: answer %s, want %s", i, rel, want)
		}
		prof, _ := res.Profile()
		calls += prof.TotalCalls()
		hedges += prof.HedgedCalls()
	}
	return lat, calls, hedges
}

// E23: hedged requests against a replica set with one intermittently
// slow replica of three. The acceptance properties are asserted up
// front — the slow replica drives the unhedged p99 to ≥5× the healthy
// baseline, hedging restores it to ≤2× the baseline, and the hedges
// cost <5% extra calls — then per-mode subbenchmarks time one request.
func BenchmarkE23Hedging(b *testing.B) {
	q := MustParseQuery(`Q(y) :- R(x), S(x, z), T(z, y).`)
	ps := MustParsePatterns(`R^o S^io T^io`)
	in := NewInstance().
		MustAdd("R", "x0").
		MustAdd("S", "x0", "z0").
		MustAdd("T", "z0", "y0")
	const (
		base     = 2 * time.Millisecond
		requests = 200
	)
	plain := func() *Runtime {
		rt := NewRuntime()
		rt.Retry.BaseDelay = 0
		return rt
	}
	hedging := func() *Runtime {
		rt := plain()
		rt.Hedge = HedgePolicy{Delay: 2 * base}
		return rt
	}
	want, err := execAnswer(q, ps, in.MustCatalog(ps))
	if err != nil {
		b.Fatal(err)
	}

	healthyLat, _, _ := e23Run(b, q, ps, e23Catalog(b, in, ps, base, false), plain(), requests, want)
	unhedgedLat, _, _ := e23Run(b, q, ps, e23Catalog(b, in, ps, base, true), plain(), requests, want)
	hedgedLat, hedgedCalls, hedges := e23Run(b, q, ps, e23Catalog(b, in, ps, base, true), hedging(), requests, want)

	healthyP99, unhedgedP99, hedgedP99 := pctl(healthyLat, 0.99), pctl(unhedgedLat, 0.99), pctl(hedgedLat, 0.99)
	b.Logf("p50: healthy=%s unhedged=%s hedged=%s",
		pctl(healthyLat, 0.50), pctl(unhedgedLat, 0.50), pctl(hedgedLat, 0.50))
	b.Logf("p99: healthy=%s unhedged=%s hedged=%s", healthyP99, unhedgedP99, hedgedP99)
	b.Logf("hedged run: %d calls, %d hedges (%.2f%% extra)",
		hedgedCalls, hedges, 100*float64(hedges)/float64(hedgedCalls-hedges))

	if unhedgedP99 < 5*healthyP99 {
		b.Fatalf("unhedged p99 %s < 5× healthy %s: the slow replica must dominate the tail", unhedgedP99, healthyP99)
	}
	if hedgedP99 > 2*healthyP99 {
		b.Fatalf("hedged p99 %s > 2× healthy %s: hedging must restore the tail", hedgedP99, healthyP99)
	}
	if 20*hedges >= hedgedCalls-hedges {
		b.Fatalf("%d hedges on %d primary calls: extra-call overhead must stay under 5%%", hedges, hedgedCalls-hedges)
	}

	modes := []struct {
		name string
		slow bool
		rt   func() *Runtime
	}{
		{"healthy", false, plain},
		{"slow-replica-unhedged", true, plain},
		{"slow-replica-hedged", true, hedging},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cat := e23Catalog(b, in, ps, base, m.slow)
			rt := m.rt()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Exec(context.Background(), q, ps, cat, WithRuntime(rt))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Rel(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E25 ----------------------------------------------------------------

// e25Fixture builds the E25 workload: a three-way join with a negated
// membership check whose intermediate binding sets dwarf both the
// source traffic and the final answer. R fans every row into a small
// set of join keys, S multiplies each key by the fanout, T closes the
// chain, and N negates a quarter of the keys — so nearly all the time
// goes to per-binding evaluator overhead, which is exactly what the
// columnar batches attack. Distinct source calls stay in the dozens
// (memoization collapses them identically under both evaluators), and
// the head projects the join keys so deduplication also runs hot.
func e25Fixture(baseRows, fanout int) (Query, *PatternSet, *engine.Instance) {
	q := MustParseQuery(`Q(z, y) :- R(x, a, b, c, d, e, z), S(z, w), T(w, y), not N(z).`)
	ps := MustParsePatterns(`R^ooooooo S^io T^io N^i`)
	in := engine.NewInstance()
	const keys = 20
	for i := 0; i < baseRows; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i),
			fmt.Sprintf("a%d", i%7), fmt.Sprintf("b%d", i%11), fmt.Sprintf("c%d", i%13),
			fmt.Sprintf("d%d", i%3), fmt.Sprintf("e%d", i%5),
			fmt.Sprintf("z%d", i%keys))
	}
	for z := 0; z < keys; z++ {
		for j := 0; j < fanout; j++ {
			in.MustAdd("S", fmt.Sprintf("z%d", z), fmt.Sprintf("w%d", j))
		}
	}
	for j := 0; j < fanout; j++ {
		in.MustAdd("T", fmt.Sprintf("w%d", j), fmt.Sprintf("y%d", j))
	}
	for z := 0; z < keys; z += 4 {
		in.MustAdd("N", fmt.Sprintf("z%d", z))
	}
	return q, ps, in
}

// e25Best times reps fresh evaluations and returns the fastest, the
// answer of the last run, and the per-run source-call count.
func e25Best(b *testing.B, rt *Runtime, q Query, ps *PatternSet, in *engine.Instance, reps int) (time.Duration, *Rel, int) {
	b.Helper()
	var (
		best  time.Duration
		ans   *Rel
		calls int
	)
	for r := 0; r < reps; r++ {
		cat := in.MustCatalog(ps)
		start := time.Now()
		got, err := rt.Answer(context.Background(), q, ps, cat)
		if err != nil {
			b.Fatal(err)
		}
		if el := time.Since(start); r == 0 || el < best {
			best = el
		}
		ans, calls = got, cat.TotalStats().Calls
	}
	return best, ans, calls
}

// E25: columnar batch evaluation vs the historical map-based
// evaluator (Runtime.MapEval). The benchmark asserts the acceptance
// properties up front — byte-identical rows in identical order,
// identical source-call counts, and at least a 5x wall-clock win for
// the columnar hot loop — then times both evaluators with allocation
// counts. When a recorded seed (BENCH_E25.json) is present, the
// columnar allocs/op must undercut the seed's map-evaluator baseline,
// so `make bench-smoke` catches allocation regressions.
func BenchmarkE25Columnar(b *testing.B) {
	q, ps, in := e25Fixture(4000, 8)
	colRT := NewRuntime()
	mapRT := NewRuntime()
	mapRT.MapEval = true

	colBest, colAns, colCalls := e25Best(b, colRT, q, ps, in, 5)
	mapBest, mapAns, mapCalls := e25Best(b, mapRT, q, ps, in, 5)

	colRows, mapRows := colAns.Rows(), mapAns.Rows()
	if len(colRows) != len(mapRows) {
		b.Fatalf("answer counts differ: columnar=%d map=%d", len(colRows), len(mapRows))
	}
	for i := range colRows {
		if colRows[i].Key() != mapRows[i].Key() {
			b.Fatalf("row %d differs: columnar=%s map=%s", i, colRows[i], mapRows[i])
		}
	}
	if colCalls != mapCalls {
		b.Fatalf("source calls differ: columnar=%d map=%d", colCalls, mapCalls)
	}
	speedup := float64(mapBest) / float64(colBest)
	b.Logf("map=%v columnar=%v speedup=%.1fx (%d rows, %d calls)",
		mapBest.Round(time.Microsecond), colBest.Round(time.Microsecond), speedup, len(colRows), colCalls)
	if speedup < 5 {
		b.Fatalf("columnar speedup %.2fx < 5x (map=%v columnar=%v)", speedup, mapBest, colBest)
	}

	// Allocation regression gate: the committed seed (BENCH_E25.json)
	// records both evaluators' allocs/op at seed time; the columnar
	// evaluator must stay below the map baseline it replaced.
	if data, err := os.ReadFile("BENCH_E25.json"); err == nil {
		var seed struct {
			MapAllocsPerOp      float64 `json:"map_allocs_per_op"`
			ColumnarAllocsPerOp float64 `json:"columnar_allocs_per_op"`
		}
		if err := json.Unmarshal(data, &seed); err != nil {
			b.Fatalf("BENCH_E25.json: %v", err)
		}
		cat := in.MustCatalog(ps)
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := colRT.Answer(context.Background(), q, ps, cat); err != nil {
				b.Fatal(err)
			}
		})
		if seed.MapAllocsPerOp > 0 && allocs >= seed.MapAllocsPerOp {
			b.Fatalf("columnar allocs/op %.0f did not drop below the recorded map-evaluator seed %.0f",
				allocs, seed.MapAllocsPerOp)
		}
		b.Logf("allocs/op: columnar=%.0f (seed: map=%.0f columnar=%.0f)",
			allocs, seed.MapAllocsPerOp, seed.ColumnarAllocsPerOp)
	} else {
		b.Log("no BENCH_E25.json seed; skipping the allocation regression gate")
	}

	for _, cfg := range []struct {
		name string
		rt   *Runtime
	}{{"map", mapRT}, {"columnar", colRT}} {
		b.Run(cfg.name, func(b *testing.B) {
			cat := in.MustCatalog(ps)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.rt.Answer(context.Background(), q, ps, cat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
