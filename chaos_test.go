package ucqn

// Chaos-schedule smoke suite (`make chaos-smoke`): seeded randomized
// fault schedules — dropped and hung calls, injected latency, circuit
// breakers, replica kills — composed over every paper example. Whatever
// the schedule does, the runtime must stay available: partial answers
// are sound underestimates of the healthy answer (equal when the report
// says complete), nothing crashes or hangs, and no goroutines leak.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/workload"
)

// chaosSchedule is one seeded draw of per-source faults.
type chaosSchedule struct {
	rng *rand.Rand
}

// wrap applies the schedule's faults to one source: optionally a fault
// injector (dropping or hanging calls), injected latency, a breaker,
// or a 3-replica set with one replica killed or hung.
func (cs *chaosSchedule) wrap(t testing.TB, src Source) Source {
	t.Helper()
	r := cs.rng
	// Replicate first with probability 1/3: the kill then hits only one
	// of three replicas.
	if r.Intn(3) == 0 {
		killed := NewFlakySource(src, FlakyConfig{FailEveryN: 1, Hang: r.Intn(3) == 0})
		reps := []Source{src, src, Source(killed)}
		// Shuffle so the dead replica is not always ranked last by index.
		r.Shuffle(len(reps), func(i, j int) { reps[i], reps[j] = reps[j], reps[i] })
		rs, err := NewReplicaSet(ReplicaConfig{
			Breaker: BreakerConfig{Window: 4, Threshold: 2, Cooldown: 50 * time.Millisecond},
		}, reps...)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	if r.Intn(2) == 0 { // transient blips, occasionally hung
		src = NewFlakySource(src, FlakyConfig{
			FailFirst:  r.Intn(2),
			FailEveryN: 2 + r.Intn(4),
			Hang:       r.Intn(4) == 0,
		})
	}
	if r.Intn(3) == 0 { // injected latency
		src = NewDelayedSource(src, time.Duration(1+r.Intn(3))*time.Millisecond)
	}
	if r.Intn(3) == 0 { // a breaker that can quarantine the source
		src = NewBreaker(src, BreakerConfig{Window: 4, Threshold: 3, Cooldown: 20 * time.Millisecond})
	}
	return src
}

// chaosCatalog builds a catalog over the instance with every source
// wrapped per the schedule.
func chaosCatalog(t testing.TB, in *Instance, ps *PatternSet, cs *chaosSchedule) *Catalog {
	t.Helper()
	base := in.MustCatalog(ps)
	var srcs []Source
	for _, name := range base.Names() {
		srcs = append(srcs, cs.wrap(t, base.Source(name)))
	}
	cat, err := NewCatalog(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// rowSet indexes a relation's rows by key.
func rowSet(rel *Rel) map[string]bool {
	out := make(map[string]bool, rel.Len())
	for _, row := range rel.Rows() {
		out[row.Key()] = true
	}
	return out
}

func TestChaosSmokePaperExamples(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, ex := range workload.PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			under := Plan(ex.Query, ex.Patterns).Under
			want := healthyAnswer(t, under, ex.Patterns)
			wantRows := rowSet(want)

			for seed := int64(1); seed <= 4; seed++ {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					cs := &chaosSchedule{rng: rand.New(rand.NewSource(seed))}
					cat := chaosCatalog(t, paperInstance(ex.Patterns), ex.Patterns, cs)

					// Hung calls are bounded by the per-call deadline, so no
					// schedule can stall the suite.
					rt := NewRuntime()
					rt.Retry = RetryPolicy{MaxAttempts: 3}
					rt.CallTimeout = 25 * time.Millisecond
					opts := []ExecOption{
						WithRuntime(rt),
						WithPartialResults(),
						WithHedging(HedgePolicy{Delay: 5 * time.Millisecond}),
					}
					if seed%2 == 0 {
						opts = append(opts, WithStreaming())
					}
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					res, err := Exec(ctx, under, ex.Patterns, cat, opts...)
					if err != nil {
						t.Fatalf("chaos run crashed: %v", err)
					}
					rel, err := res.Rel()
					if err != nil {
						t.Fatalf("chaos run failed to drain: %v", err)
					}
					// Soundness: every returned tuple is a certain answer.
					for _, row := range rel.Rows() {
						if !wantRows[row.Key()] {
							t.Fatalf("unsound row %s not in the healthy answer %s", row, want)
						}
					}
					inc, ok := res.Incompleteness()
					if !ok {
						t.Fatal("no incompleteness report")
					}
					if inc.Complete() && !rel.Equal(want) {
						t.Errorf("report says complete but answer %s != healthy %s", rel, want)
					}
				})
			}
		})
	}
	// No schedule may leak goroutines: give in-flight losers a moment to
	// observe their cancellation, then compare against the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 || time.Now().After(deadline) {
			if n > before+2 {
				t.Errorf("goroutines leaked: %d before, %d after", before, n)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
