package ucqn

// Semantic query cache wiring for Exec: WithQueryCache routes plan
// compilation through the canonical plan cache and, when possible,
// serves answers (whole or per-disjunct) from the answer cache. The
// cache itself lives in internal/qcache; this file is the facade and
// the two cached execution paths (materialized and streaming).

import (
	"context"

	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/qcache"
	"repro/internal/sources"
)

// QueryCache is the two-tier semantic query cache: a plan cache keyed
// on an isomorphism-invariant canonical form of the minimized query
// (α-renamed and non-minimal resubmissions hit without re-planning) and
// an answer cache that reuses a disjunct's rows only when its
// minimized core is provably *equivalent* to a cached one and the
// catalog generation matches. Construct with NewQueryCache, share one
// instance across Exec callers (it is safe for concurrent use), and
// attach it per call with WithQueryCache.
type QueryCache = qcache.Cache

// QueryCacheOptions configures a QueryCache (zero value = defaults:
// 512 plans, 1024 answer entries, 64 MiB of rows, no TTL).
type QueryCacheOptions = qcache.Options

// QueryCacheStats are a QueryCache's cumulative counters.
type QueryCacheStats = qcache.Stats

// NewQueryCache returns a semantic query cache with the given options.
func NewQueryCache(opt QueryCacheOptions) *QueryCache { return qcache.New(opt) }

// WithQueryCache routes this Exec call through qc: the plan (executable
// form, orderability, FEASIBLE verdict) is served from the plan cache
// when an equivalent query was planned before, and answers are reused
// per disjunct when the catalog's generation still matches. Cached
// execution accepts any orderable query (the cache plans a reordering),
// not only queries executable as written. The cache is bypassed — not
// an error — under WithNaive, WithAnswerStar/WithImproveUnder, and
// WithStats (cost ordering is statistics-dependent, so its plans are
// not a pure function of the query and patterns).
func WithQueryCache(qc *QueryCache) ExecOption { return func(c *execConfig) { c.qc = qc } }

// useQueryCache reports whether this Exec call goes through the cache.
func (c *execConfig) useQueryCache() bool {
	return c.qc != nil && c.naive == nil && !c.star && !c.hasStats
}

// cacheProfile seeds an ExecProfile's cache counters from a plan lookup
// and an answer-cache consultation. The persistence counters are the
// cache's cumulative totals (like Profile.Replicas), not per-execution
// deltas: warm loads happen lazily at the first lookup per catalog
// label, so a per-call delta would credit them to an arbitrary request.
func cacheProfile(qc *QueryCache, info qcache.PlanInfo, hit qcache.AnswerHit) engine.Profile {
	var p engine.Profile
	if info.Hit {
		p.Cache.PlanHits = 1
	}
	p.Cache.Evictions = info.Evictions
	if hit.Full != nil {
		p.Cache.AnswerHits = 1
	} else {
		p.Cache.PartialReuseRules = hit.CachedRules
	}
	st := qc.Stats()
	p.Cache.PersistLoads = st.PersistLoads
	p.Cache.PersistDrops = st.PersistDrops
	p.Cache.PersistBytes = st.PersistBytes
	return p
}

// liveRemainder extracts the sub-union of exec rules the answer cache
// did not cover, with remap[i] = the original index of sub.Rules[i].
func liveRemainder(exec logic.UCQ, hit qcache.AnswerHit) (sub logic.UCQ, remap []int) {
	for i, r := range exec.Rules {
		if r.False || hit.Covered[i] {
			continue
		}
		sub.Rules = append(sub.Rules, r)
		remap = append(remap, i)
	}
	return sub, remap
}

// completeInc is the Incompleteness of a fully cached partial-results
// run: every disjunct covered, none failed.
func completeInc(rules int) *engine.Incompleteness {
	return &engine.Incompleteness{RulesTotal: rules, RulesSurvived: rules}
}

// execCachedMaterialized is Exec's materialized path through the cache.
func execCachedMaterialized(ctx context.Context, rt *Runtime, c *execConfig, entry *qcache.PlanEntry, info qcache.PlanInfo, ps *PatternSet, cat *sources.Catalog) (*Result, error) {
	hit := c.qc.Answers(entry, cat)
	prof := cacheProfile(c.qc, info, hit)
	if hit.Full != nil {
		var inc *engine.Incompleteness
		if c.partial {
			inc = completeInc(hit.ReusedRules)
		}
		return &Result{rel: hit.Full, profiled: c.profile, prof: prof, inc: inc}, nil
	}

	exec := entry.Exec()
	sub, remap := liveRemainder(exec, hit)
	rels := make([]*engine.Rel, len(exec.Rules))
	_, liveProf, inc, err := rt.Eval(ctx, sub, ps, cat, engine.EvalOpts{
		Parallel: c.parallel,
		Profile:  c.profile,
		Partial:  c.partial,
		OnRuleDone: func(i int, rel *engine.Rel) {
			rels[remap[i]] = rel
		},
	})
	if err != nil {
		return nil, err
	}

	// Assemble in original rule order — cached rows and live rows insert
	// exactly as a sequential uncached evaluation would.
	out := engine.NewRel()
	for i := range exec.Rules {
		if hit.Covered[i] {
			for _, row := range hit.Rows[i] {
				out.Add(row)
			}
		} else if rels[i] != nil {
			for _, row := range rels[i].Rows() {
				out.Add(row)
			}
		}
	}

	// Credit the reused disjuncts to the degradation accounting and map
	// the live sub-union's rule indexes back to the full plan's.
	if inc != nil {
		for j := range inc.Failed {
			if idx := inc.Failed[j].RuleIndex; idx >= 0 && idx < len(remap) {
				inc.Failed[j].RuleIndex = remap[idx]
			}
		}
		inc.RulesTotal += hit.ReusedRules
		inc.RulesSurvived += hit.ReusedRules
	}

	// Degraded disjuncts left rels[i] nil, so only complete per-disjunct
	// answers are stored.
	evicted := c.qc.StoreAnswers(entry, cat, rels)

	liveProf.Cache.PlanHits += prof.Cache.PlanHits
	liveProf.Cache.PartialReuseRules += prof.Cache.PartialReuseRules
	liveProf.Cache.Evictions += prof.Cache.Evictions + evicted
	liveProf.Cache.PersistLoads = prof.Cache.PersistLoads
	liveProf.Cache.PersistDrops = prof.Cache.PersistDrops
	liveProf.Cache.PersistBytes = prof.Cache.PersistBytes
	return &Result{rel: out, profiled: c.profile, prof: liveProf, inc: inc}, nil
}

// execCachedStream is Exec's streaming path through the cache. A full
// answer hit replays the cached relation; a partial hit prepends the
// cached disjuncts' rows to a live stream over the remainder. Streamed
// runs do not fill the answer cache (their per-disjunct answers are
// never materialized separately); a materialized run does.
func execCachedStream(ctx context.Context, rt *Runtime, c *execConfig, entry *qcache.PlanEntry, info qcache.PlanInfo, ps *PatternSet, cat *sources.Catalog) (*Result, error) {
	hit := c.qc.Answers(entry, cat)
	prof := cacheProfile(c.qc, info, hit)
	if hit.Full != nil {
		var inc *engine.Incompleteness
		if c.partial {
			inc = completeInc(hit.ReusedRules)
		}
		return &Result{stream: engine.ReplayStream(hit.Full, prof, inc), profiled: c.profile}, nil
	}

	exec := entry.Exec()
	sub, remap := liveRemainder(exec, hit)
	var pre []engine.Row
	for i := range exec.Rules {
		for _, row := range hit.Rows[i] {
			pre = append(pre, row)
		}
	}
	inner, err := rt.StreamEval(ctx, sub, ps, cat, engine.StreamOpts{Parallel: c.parallel, Partial: c.partial})
	if err != nil {
		return nil, err
	}
	s := engine.ComposeStream(pre, inner, prof, hit.ReusedRules, remap)
	return &Result{stream: s, profiled: c.profile}, nil
}
