package ucqn

// Facade over the extension subsystems that go beyond the paper's four
// figures: GAV view unfolding (the mediator front end of Section 6),
// semantic optimization with inclusion dependencies (Example 6), the
// call-minimizing plan order, the Chekuri–Rajaraman acyclic containment
// fast path (Section 5.1), and source-call caching.

import (
	"context"
	"time"

	"repro/internal/constraints"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/parser"
	"repro/internal/program"
	"repro/internal/services"
	"repro/internal/sources"
)

// Views is a set of global-as-view definitions; queries over the global
// schema unfold into UCQ¬ plans over the sources.
type Views = mediator.Views

// NewViews returns an empty GAV view set. Register definitions with
// Add (each definition is a negation-free UCQ naming the global relation
// in its head) and rewrite client queries with Unfold.
func NewViews() *Views { return mediator.NewViews() }

// Program is a nonrecursive Datalog¬ program: multi-level IDB
// definitions over source relations, compiled per predicate into UCQ¬
// by repeated unfolding.
type Program = program.Program

// NewProgram returns an empty nonrecursive Datalog¬ program. Add rules
// (ParseRules accepts multi-head rule text), then Compile a predicate to
// a UCQ¬ over the sources.
func NewProgram() *Program { return program.New() }

// ParseRules parses rules that may define several head predicates (for
// Program input).
func ParseRules(src string) ([]Rule, error) { return parser.ParseRules(src) }

// IND is an inclusion dependency From[FromCols] ⊆ To[ToCols] (a foreign
// key when the columns are keys).
type IND = constraints.IND

// INDSet is a set of inclusion dependencies with the Example 6 semantic
// optimizer: Optimize drops rules that the dependencies refute.
type INDSet = constraints.Set

// ParseINDs reads dependencies in the form "R[1] < S[0]; T[0,1] < U[1,0]".
func ParseINDs(src string) (INDSet, error) { return constraints.Parse(src) }

// MustParseINDs is ParseINDs that panics on error.
func MustParseINDs(src string) INDSet { return constraints.MustParse(src) }

// FeasibleUnder decides feasibility modulo inclusion dependencies: rules
// whose chase is unsatisfiable are dropped (they are empty on every
// instance satisfying the dependencies), then FEASIBLE runs on the
// remainder. The Example 4 query is infeasible in general but feasible
// under Example 6's foreign key.
func FeasibleUnder(q Query, ps *PatternSet, inds INDSet) FeasibleResult {
	return constraints.FeasibleUnder(q, ps, inds)
}

// AnswerStarUnder runs ANSWER* on the semantically optimized query
// (rules the dependencies refute are dropped before planning). Use only
// when the sources' data satisfies the dependencies.
//
// Deprecated: use Exec with WithAnswerStar and WithINDs(inds) and read
// Result.Star.
func AnswerStarUnder(q Query, ps *PatternSet, cat *Catalog, inds INDSet) (AnswerStar, error) {
	res, err := Exec(context.Background(), q, ps, cat, WithAnswerStar(), WithINDs(inds))
	if err != nil {
		return AnswerStar{}, err
	}
	star, _ := res.Star()
	return star, nil
}

// OptimizeOrder returns an executable reordering of the query chosen to
// reduce source traffic (filters first, bound-is-easier), and whether
// every rule was orderable. Reorder returns ANSWERABLE's discovery
// order instead; both are equivalent to the input.
func OptimizeOrder(q Query, ps *PatternSet) (Query, bool) {
	return core.OptimizeOrderUCQ(q, ps)
}

// PlanStats carries per-relation cardinality estimates for cost-based
// plan ordering.
type PlanStats = core.Stats

// StatsFromCardinalities builds PlanStats from table sizes, with a
// sqrt(n) distinct-values heuristic per column.
func StatsFromCardinalities(cards map[string]int) PlanStats {
	return core.StatsFromCardinalities(cards)
}

// CostOrder returns an executable order minimizing estimated source
// calls under the given statistics: exact (branch and bound) for small
// bodies, greedy beyond. ok is false when some rule is not orderable.
func CostOrder(q Query, ps *PatternSet, st PlanStats) (Query, bool) {
	return core.CostOrderUCQ(q, ps, st)
}

// AcyclicRule reports whether the hypergraph of the rule's positive
// literals is α-acyclic. Containment into negation-free acyclic rules
// is decided by a polynomial semijoin program (Chekuri & Rajaraman,
// ICDT 1997) instead of backtracking search.
func AcyclicRule(r Rule) bool { return containment.Acyclic(r) }

// Witness is a checkable certificate for a containment P ⊑ Q (the tree
// of Theorem 13): verify one with VerifyWitness.
type Witness = containment.Witness

// FeasibleExplanation is a FEASIBLE verdict with containment witnesses
// for the expensive path.
type FeasibleExplanation = core.Explanation

// ExplainFeasible is Feasible with auditable evidence: when the verdict
// came from the containment test, the explanation carries one witness
// per overestimate rule.
func ExplainFeasible(q Query, ps *PatternSet) FeasibleExplanation {
	return core.ExplainFeasible(q, ps)
}

// ExplainContained returns a checkable witness for p ⊑ q, or ok=false.
func ExplainContained(p Rule, q Query) (*Witness, bool) {
	return containment.NewChecker(q).Explain(p)
}

// VerifyWitness re-checks a containment witness for p ⊑ q.
func VerifyWitness(p Rule, q Query, w *Witness) error {
	return containment.NewChecker(q).Verify(p, w)
}

// AnswerParallel evaluates the plan with one goroutine per rule (the
// paper's "execute each rule separately, possibly in parallel").
//
// Deprecated: use Exec with WithParallelRules.
func AnswerParallel(q Query, ps *PatternSet, cat *Catalog) (*Rel, error) {
	res, err := Exec(context.Background(), q, ps, cat, WithParallelRules())
	if err != nil {
		return nil, err
	}
	return res.Rel()
}

// AnswerProfiled is Answer with per-step execution accounting (an
// EXPLAIN ANALYZE for limited-access plans).
//
// Deprecated: use Exec with WithProfile and read Result.Rel and
// Result.Profile.
func AnswerProfiled(q Query, ps *PatternSet, cat *Catalog) (*Rel, ExecProfile, error) {
	res, err := Exec(context.Background(), q, ps, cat, WithProfile())
	if err != nil {
		return nil, ExecProfile{}, err
	}
	rel, err := res.Rel()
	if err != nil {
		return nil, ExecProfile{}, err
	}
	prof, _ := res.Profile()
	return rel, prof, nil
}

// ExecProfile is the execution profile of a plan: per-step source calls,
// tuples, and binding-set sizes.
type ExecProfile = engine.Profile

// StepProfile is one step of an ExecProfile.
type StepProfile = engine.StepProfile

// Operation describes a web service operation op: inputs → outputs over
// a relation's attributes (Section 1 of the paper).
type Operation = services.Operation

// OperationRegistry collects operation descriptions and derives the
// pattern set the planner consumes.
type OperationRegistry = services.Registry

// NewOperationRegistry returns an empty web-service operation registry.
func NewOperationRegistry() *OperationRegistry { return services.NewRegistry() }

// CachedSource wraps a source with a call cache; repeated identical
// calls are served locally.
type CachedSource = sources.Cached

// NewCachedSource wraps src with a cache.
func NewCachedSource(src Source) *CachedSource { return sources.NewCached(src) }

// CachedCatalog wraps every source of the catalog with a cache,
// returning the wrapped catalog and the cache handles.
func CachedCatalog(cat *Catalog) (*Catalog, []*CachedSource, error) {
	return sources.CachedCatalog(cat)
}

// Runtime is the source-call runtime behind Answer, AnswerParallel and
// RunAnswerStar: it groups each step's bindings by input-slot key so
// every distinct call is issued once, drives distinct calls through a
// bounded worker pool, and retries transient failures. Construct one
// with NewRuntime (or SequentialRuntime for the historical per-binding
// loop), tune the exported fields before first use, and call its
// context-taking Answer/AnswerParallel/RunAnswerStar methods.
type Runtime = engine.Runtime

// RetryPolicy configures how a Runtime retries failed source calls.
type RetryPolicy = engine.RetryPolicy

// NewRuntime returns the production runtime configuration: call
// deduplication on, one worker per CPU, transient failures retried with
// exponential backoff.
func NewRuntime() *Runtime { return engine.NewRuntime() }

// SequentialRuntime returns a runtime that evaluates exactly like the
// historical per-binding loop: one call per binding, in order, no
// retries. Useful as a benchmark baseline.
func SequentialRuntime() *Runtime { return engine.SequentialRuntime() }

// DefaultRetryPolicy is the policy NewRuntime installs.
func DefaultRetryPolicy() RetryPolicy { return engine.DefaultRetryPolicy() }

// FlakySource injects transient failures in front of a source, for
// testing retry behavior and fault-tolerance of plans.
type FlakySource = sources.Flaky

// FlakyConfig schedules a FlakySource's injected failures.
type FlakyConfig = sources.FlakyConfig

// NewFlakySource wraps src with a fault injector.
func NewFlakySource(src Source, cfg FlakyConfig) *FlakySource {
	return sources.NewFlaky(src, cfg)
}

// DelayedSource wraps a source with a fixed per-call latency — the
// simulated network round trip that streaming pipelines overlap.
type DelayedSource = sources.Delayed

// NewDelayedSource wraps src so every call takes at least d.
func NewDelayedSource(src Source, d time.Duration) *DelayedSource {
	return sources.NewDelayed(src, d)
}

// DelayedCatalog wraps every source of the catalog with the same
// per-call latency.
func DelayedCatalog(cat *Catalog, d time.Duration) (*Catalog, error) {
	return sources.DelayedCatalog(cat, d)
}

// Transient marks an error as a transient source failure (retryable by
// the runtime's default policy).
func Transient(err error) error { return sources.Transient(err) }

// IsTransient reports whether any error in err's chain is transient.
func IsTransient(err error) bool { return sources.IsTransient(err) }

// StatsReporter is implemented by sources that meter their own traffic;
// wrappers like CachedSource and FlakySource forward it to the wrapped
// source, so Catalog.TotalStats reports real remote traffic even on
// wrapped catalogs.
type StatsReporter = sources.StatsReporter

// SeededJitter returns a deterministic jitter hook for RetryPolicy: it
// maps each backoff delay d to a pseudorandom duration in [d/2, d]
// ("equal jitter"), drawn from a stream seeded with seed. Retrying
// callers desynchronize (no thundering herd after a shared failure)
// while tests stay reproducible under a fixed seed.
func SeededJitter(seed int64) func(time.Duration) time.Duration {
	return engine.SeededJitter(seed)
}

// Breaker is a per-source circuit breaker: after enough failures in its
// sliding window it opens and fails calls fast with ErrBreakerOpen
// (without touching the source), then after a cooldown admits a single
// probe to decide whether to close again. Wrap unreliable sources with
// NewBreaker or a whole catalog with BreakerCatalog.
type Breaker = sources.Breaker

// BreakerConfig tunes a Breaker's window, threshold, and cooldown.
type BreakerConfig = sources.BreakerConfig

// BreakerState is a Breaker's state: closed, open, or half-open.
type BreakerState = sources.BreakerState

// Breaker states.
const (
	BreakerClosed   = sources.BreakerClosed
	BreakerOpen     = sources.BreakerOpen
	BreakerHalfOpen = sources.BreakerHalfOpen
)

// ErrBreakerOpen is the terminal (non-transient) error a Breaker returns
// while open: retrying immediately cannot help.
var ErrBreakerOpen = sources.ErrBreakerOpen

// NewBreaker wraps src with a circuit breaker.
func NewBreaker(src Source, cfg BreakerConfig) *Breaker {
	return sources.NewBreaker(src, cfg)
}

// BreakerCatalog wraps every source of the catalog with its own circuit
// breaker, returning the wrapped catalog and the breaker handles indexed
// like cat.Names().
func BreakerCatalog(cat *Catalog, cfg BreakerConfig) (*Catalog, []*Breaker, error) {
	return sources.BreakerCatalog(cat, cfg)
}

// Budget caps what one query execution may spend on source calls; set
// it on a Runtime. ErrCallBudget failures are terminal.
type Budget = engine.Budget

// ErrCallBudget is returned (wrapped) when an execution exhausts its
// Runtime's per-query call or time budget.
var ErrCallBudget = engine.ErrCallBudget

// Incompleteness is the degradation report of a partial-results
// execution (Exec with WithPartialResults): which disjuncts were
// dropped, which sources failed them, and the disjunct-level
// completeness ratio.
type Incompleteness = engine.Incompleteness

// RuleFailure is one dropped disjunct of an Incompleteness report.
type RuleFailure = engine.RuleFailure

// FailureClass classifies why a disjunct was dropped.
type FailureClass = engine.FailureClass

// Failure classes.
const (
	FailBreaker   = engine.FailBreaker
	FailBudget    = engine.FailBudget
	FailTransient = engine.FailTransient
	FailTerminal  = engine.FailTerminal
)

// ClassifyFailure maps a rule-evaluation error to its failure class.
func ClassifyFailure(err error) FailureClass { return engine.ClassifyFailure(err) }

// FailReplicas is the failure class of a rule dropped because every
// replica of a replicated source failed (see ErrReplicasExhausted).
const FailReplicas = engine.FailReplicas

// ReplicaSet fronts N replicas of one relation behind the single-source
// interface: calls route to the healthiest replica (EWMA latency,
// sliding-window failure rate), fail over on error, and quarantine
// persistently failing replicas behind per-replica circuit breakers.
// Build one with NewReplicaSet, or replicate a whole catalog with
// ReplicaCatalog.
type ReplicaSet = sources.ReplicaSet

// ReplicaConfig tunes a ReplicaSet: per-replica breaker settings, the
// routing policy, and the health-tracking window.
type ReplicaConfig = sources.ReplicaConfig

// ReplicaStats is one replica's health and traffic breakdown.
type ReplicaStats = sources.ReplicaStats

// ReplicaHealth is the health snapshot a RoutingPolicy ranks by.
type ReplicaHealth = sources.ReplicaHealth

// RoutingPolicy orders a ReplicaSet's replicas for each call.
type RoutingPolicy = sources.RoutingPolicy

// HealthiestFirst routes to the replica with the best latency/failure
// score, rotating among statistically indistinguishable ones. It is the
// default policy.
type HealthiestFirst = sources.HealthiestFirst

// RoundRobin rotates through healthy replicas in declaration order.
type RoundRobin = sources.RoundRobin

// ReplicasError reports that every replica of a set failed; it unwraps
// to the member failures and matches ErrReplicasExhausted.
type ReplicasError = sources.ReplicasError

// ErrReplicasExhausted is matched (errors.Is) by failures where every
// replica of a replicated source failed. A rule backed by replicas
// degrades only on this condition.
var ErrReplicasExhausted = sources.ErrReplicasExhausted

// NewReplicaSet fronts the given replicas of one relation. All replicas
// must agree on name, arity, and patterns.
func NewReplicaSet(cfg ReplicaConfig, replicas ...Source) (*ReplicaSet, error) {
	return sources.NewReplicaSet(cfg, replicas...)
}

// ReplicaCatalog zips same-schema catalogs into one catalog of replica
// sets: source i of the result fronts source i of every input catalog.
// The returned replica sets are indexed like cat.Names().
func ReplicaCatalog(cfg ReplicaConfig, cats ...*Catalog) (*Catalog, []*ReplicaSet, error) {
	return sources.ReplicaCatalog(cfg, cats...)
}

// HedgePolicy configures hedged requests on a Runtime (or via
// WithHedging): after a delay — fixed, or derived from the replica
// set's observed latency quantile — a backup attempt launches on the
// next-healthiest replica; the first success wins and the loser is
// cancelled. The zero value disables hedging.
type HedgePolicy = engine.HedgePolicy

// ReplicaSetProfile is the per-replica breakdown of one replicated
// source in an ExecProfile.
type ReplicaSetProfile = engine.ReplicaSetProfile

// VirtualClock is a manually advanced clock for deterministic tests of
// time-dependent wrappers (DelayedSource, Breaker, ReplicaSet): inject
// its Now/Sleep methods and call Advance to move time.
type VirtualClock = sources.VirtualClock

// NewVirtualClock returns a virtual clock reading start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return sources.NewVirtualClock(start)
}
