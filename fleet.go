package ucqn

// Fleet facade: WithFleet routes an Exec call through a query cache
// that shares its persistence directory with other processes — a
// cache fleet. One replica at a time (elected via the TTL'd writer
// lease) owns the append log; the rest follow the published state and
// warm-start from answers any sibling paid for. Storage or peer
// trouble degrades a replica to its local in-memory cache, never a
// failed query; invalidations fan out fleet-wide within one poll
// interval. The mechanics live in internal/qcache/fleet.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/qcache"
	"repro/internal/qcache/fleet"
)

// FleetOptions configures this process's fleet replica (lease TTL,
// poll interval, replica ID). See the field docs in
// internal/qcache/fleet.Options.
type FleetOptions = fleet.Options

// FleetStats is a fleet replica's health snapshot: role, lease age,
// staleness bound, takeover and fence counters.
type FleetStats = fleet.Stats

// FleetNode is this process's handle on the shared cache directory.
type FleetNode = fleet.Node

// fleetCaches is the process-wide registry of fleet-backed caches,
// one per shared directory: every Exec and OpenFleetCache against the
// same dir shares one cache and one replica identity.
var (
	fleetMu     sync.Mutex
	fleetCaches = map[string]*QueryCache{}
	fleetNodes  = map[string]*fleet.Node{}
)

// defaultFleetID names this process in a fleet when the caller did
// not: hostname plus pid is unique across a fleet of machines and
// across restarts on one machine (a stale inbox file from a previous
// pid is still read by everyone — at-least-once holds either way).
func defaultFleetID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "ucqn"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// OpenFleetCache returns the process-wide fleet-backed query cache
// for the shared dir, joining the fleet — and starting the background
// poll/renewal ticker — on first use. opt and fopt apply only when
// this call creates the cache; later calls for the same directory
// return the existing cache and node unchanged. An empty fopt.ID
// defaults to hostname-pid. Call ClosePersist on the cache during
// graceful shutdown: it releases the lease (when this replica is the
// writer) and makes the final fsync batch durable.
func OpenFleetCache(dir string, opt QueryCacheOptions, fopt FleetOptions) (*QueryCache, *FleetNode, error) {
	key, err := filepath.Abs(dir)
	if err != nil {
		key = dir
	}
	fleetMu.Lock()
	defer fleetMu.Unlock()
	if qc, ok := fleetCaches[key]; ok {
		return qc, fleetNodes[key], nil
	}
	if fopt.ID == "" {
		fopt.ID = defaultFleetID()
	}
	fopt.Background = true
	qc, node, err := qcache.OpenFleet(dir, opt, fopt)
	if err != nil {
		return nil, nil, err
	}
	fleetCaches[key] = qc
	fleetNodes[key] = node
	return qc, node, nil
}

// WithFleet routes this Exec call through the fleet-backed query
// cache for the shared dir (see OpenFleetCache): answers computed by
// any replica of the fleet warm this process's cache, and this
// process's answers (while it holds the writer lease) warm everyone
// else's. It is WithPersistence generalized from one process to N;
// the three cache options (WithQueryCache, WithPersistence,
// WithFleet) do not combine — pass exactly one. Catalogs must carry a
// stable label (Catalog.SetPersistentID) for their answers to travel;
// unlabeled catalogs get plain in-memory caching.
func WithFleet(dir string) ExecOption {
	return func(c *execConfig) { c.fleetDir = dir }
}
