package ucqn

// Exec facade tests: every option agrees with the deprecated wrapper it
// replaces, contradictory combinations are rejected up front, and the
// streaming path drains to the same answers.

import (
	"context"
	"fmt"
	"testing"
)

// execFixture returns a two-rule union with shared lookups, its
// patterns, and a loaded instance.
func execFixture(t *testing.T) (Query, *PatternSet, *Instance) {
	t.Helper()
	q := MustParseQuery(`
		Q(x, y) :- R(x, z), T(z, y).
		Q(x, y) :- S(x, y), not L(x).
	`)
	ps := MustParsePatterns(`R^oo T^io S^oo L^i`)
	in := NewInstance()
	for i := 0; i < 40; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%5))
	}
	for z := 0; z < 5; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	in.MustAdd("S", "s1", "t1").MustAdd("S", "s2", "t2").MustAdd("L", "s2")
	return q, ps, in
}

func TestExecDefaultMatchesAnswer(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := Answer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Exec = %s, want %s", got, want)
	}
	if res.Stream() != nil {
		t.Error("Stream must be nil without WithStreaming")
	}
	if _, ok := res.Profile(); ok {
		t.Error("Profile must be absent without WithProfile")
	}
}

func TestExecParallelRules(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := AnswerParallel(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithParallelRules())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Exec parallel = %s, want %s", got, want)
	}
}

func TestExecProfile(t *testing.T) {
	q, ps, in := execFixture(t)
	_, wantProf, err := AnswerProfiled(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := res.Profile()
	if !ok {
		t.Fatal("profile must be recorded with WithProfile")
	}
	if prof.TotalCalls() != wantProf.TotalCalls() || prof.TotalDeduped() != wantProf.TotalDeduped() {
		t.Errorf("profile traffic %d/%d, want %d/%d",
			prof.TotalCalls(), prof.TotalDeduped(), wantProf.TotalCalls(), wantProf.TotalDeduped())
	}
	if prof.Elapsed <= 0 {
		t.Error("profile must carry wall-clock time")
	}
}

func TestExecNaive(t *testing.T) {
	q, _, in := execFixture(t)
	want, err := AnswerNaive(q, in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, nil, nil, WithNaive(in))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Exec naive = %s, want %s", got, want)
	}
}

func TestExecAnswerStar(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := RunAnswerStar(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithAnswerStar())
	if err != nil {
		t.Fatal(err)
	}
	star, ok := res.Star()
	if !ok {
		t.Fatal("Star must be populated with WithAnswerStar")
	}
	if star.Report() != want.Report() {
		t.Errorf("reports differ:\n%s\nvs\n%s", star.Report(), want.Report())
	}
	rel, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(want.Under) {
		t.Errorf("Rel must be the underestimate: %s vs %s", rel, want.Under)
	}
}

func TestExecStarUnderINDs(t *testing.T) {
	q := MustParseQuery(`
		Q(x) :- A(x).
		Q(x) :- B(x, z), not C(z).
	`)
	ps := MustParsePatterns(`A^o B^oo C^i`)
	inds := MustParseINDs(`B[1] < C[0]`)
	in := NewInstance().MustAdd("A", "a").MustAdd("B", "b", "c").MustAdd("C", "c")
	want, err := AnswerStarUnder(q, ps, in.MustCatalog(ps), inds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithAnswerStar(), WithINDs(inds))
	if err != nil {
		t.Fatal(err)
	}
	star, ok := res.Star()
	if !ok {
		t.Fatal("Star must be populated")
	}
	if star.Report() != want.Report() {
		t.Errorf("reports differ:\n%s\nvs\n%s", star.Report(), want.Report())
	}
}

func TestExecImproveUnder(t *testing.T) {
	// S(y, x) is unanswerable as written (y has no binder), so PLAN*
	// under-approximates; domain enumeration re-admits it through dom(y).
	q := MustParseQuery(`Q(x) :- R(x), S(y, x).`)
	ps := MustParsePatterns(`R^o S^io`)
	in := NewInstance().MustAdd("R", "a").MustAdd("R", "b").MustAdd("S", "a", "b")

	star, err := RunAnswerStar(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	wantRel, wantRules, wantDom, err := ImproveUnder(star, ps, in.MustCatalog(ps), 100)
	if err != nil {
		t.Fatal(err)
	}

	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithImproveUnder(100))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(wantRel) {
		t.Errorf("improved = %s, want %s", rel, wantRel)
	}
	rules, dom, ok := res.Improved()
	if !ok {
		t.Fatal("Improved must be populated with WithImproveUnder")
	}
	if rules.String() != wantRules.String() {
		t.Errorf("improved rules = %s, want %s", rules, wantRules)
	}
	if dom.Calls != wantDom.Calls || len(dom.Values) != len(wantDom.Values) {
		t.Errorf("dom = %+v, want %+v", dom, wantDom)
	}
	if _, ok := res.Star(); !ok {
		t.Error("WithImproveUnder implies the ANSWER* report")
	}
}

func TestExecStreaming(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := Answer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []bool{false, true} {
		opts := []ExecOption{WithStreaming(), WithProfile()}
		if parallel {
			opts = append(opts, WithParallelRules())
		}
		res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), opts...)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stream()
		if s == nil {
			t.Fatal("Stream must be non-nil with WithStreaming")
		}
		if _, ok := res.Profile(); ok {
			t.Error("streamed profile must not be complete before draining")
		}
		got, err := res.Rel() // drains
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("streamed (parallel=%v) = %s, want %s", parallel, got, want)
		}
		again, err := res.Rel() // cached after the drain
		if err != nil || again != got {
			t.Errorf("second Rel must reuse the drained set: %v", err)
		}
		prof, ok := res.Profile()
		if !ok {
			t.Fatal("streamed profile must be complete after draining")
		}
		if prof.TimeToFirst <= 0 {
			t.Error("streamed profile must record time to first tuple")
		}
	}
}

func TestExecWithStats(t *testing.T) {
	q, ps, in := execFixture(t)
	st := StatsFromCardinalities(map[string]int{"R": 40, "T": 5, "S": 2, "L": 1})
	want, err := Answer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithStats(st))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("cost-ordered Exec = %s, want %s", got, want)
	}
}

func TestExecWithRuntimeKnobs(t *testing.T) {
	q, ps, in := execFixture(t)
	rt := NewRuntime()
	rt.BatchSize, rt.StageBuffer = 4, 2
	want, err := Answer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithRuntime(rt), WithStreaming())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Exec with runtime knobs = %s, want %s", got, want)
	}
}

func TestExecRejectsContradictoryOptions(t *testing.T) {
	q, ps, in := execFixture(t)
	cat := in.MustCatalog(ps)
	cases := []struct {
		name string
		opts []ExecOption
	}{
		{"naive+streaming", []ExecOption{WithNaive(in), WithStreaming()}},
		{"naive+star", []ExecOption{WithNaive(in), WithAnswerStar()}},
		{"naive+inds", []ExecOption{WithNaive(in), WithINDs(nil)}},
		{"star+streaming", []ExecOption{WithAnswerStar(), WithStreaming()}},
		{"star+parallel", []ExecOption{WithAnswerStar(), WithParallelRules()}},
		{"profile+parallel materialized", []ExecOption{WithProfile(), WithParallelRules()}},
		{"star+partial", []ExecOption{WithAnswerStar(), WithPartialResults()}},
		{"naive+partial", []ExecOption{WithNaive(in), WithPartialResults()}},
	}
	for _, c := range cases {
		if _, err := Exec(context.Background(), q, ps, cat, c.opts...); err == nil {
			t.Errorf("%s: contradictory options must be rejected", c.name)
		}
	}
}

func TestExecHonorsContext(t *testing.T) {
	q, ps, in := execFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Exec(ctx, q, ps, in.MustCatalog(ps)); err == nil {
		t.Error("cancelled context must abort materialized Exec")
	}
	if _, err := Exec(ctx, q, nil, nil, WithNaive(in)); err == nil {
		t.Error("cancelled context must abort naive Exec")
	}
}
