package ucqn

// Exec facade tests: option plumbing, contradictory combinations
// rejected up front, the streaming path draining to the same answers,
// and the batch knobs. Equivalence with the deprecated wrappers is
// covered in deprecated_test.go.

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// execFixture returns a two-rule union with shared lookups, its
// patterns, and a loaded instance.
func execFixture(t *testing.T) (Query, *PatternSet, *Instance) {
	t.Helper()
	q := MustParseQuery(`
		Q(x, y) :- R(x, z), T(z, y).
		Q(x, y) :- S(x, y), not L(x).
	`)
	ps := MustParsePatterns(`R^oo T^io S^oo L^i`)
	in := NewInstance()
	for i := 0; i < 40; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%5))
	}
	for z := 0; z < 5; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	in.MustAdd("S", "s1", "t1").MustAdd("S", "s2", "t2").MustAdd("L", "s2")
	return q, ps, in
}

// execAnswer materializes q through the default Exec path — the
// test-side replacement for the deprecated Answer wrapper.
func execAnswer(q Query, ps *PatternSet, cat *Catalog) (*Rel, error) {
	res, err := Exec(context.Background(), q, ps, cat)
	if err != nil {
		return nil, err
	}
	return res.Rel()
}

// execNaive evaluates q directly over the instance through Exec — the
// test-side replacement for the deprecated AnswerNaive wrapper.
func execNaive(q Query, in *Instance) (*Rel, error) {
	res, err := Exec(context.Background(), q, nil, nil, WithNaive(in))
	if err != nil {
		return nil, err
	}
	return res.Rel()
}

// execProfiled materializes q with per-step accounting through Exec —
// the test-side replacement for the deprecated AnswerProfiled wrapper.
func execProfiled(q Query, ps *PatternSet, cat *Catalog) (*Rel, ExecProfile, error) {
	res, err := Exec(context.Background(), q, ps, cat, WithProfile())
	if err != nil {
		return nil, ExecProfile{}, err
	}
	rel, err := res.Rel()
	if err != nil {
		return nil, ExecProfile{}, err
	}
	prof, _ := res.Profile()
	return rel, prof, nil
}

// execStar runs the full ANSWER* algorithm through Exec — the
// test-side replacement for the deprecated RunAnswerStar wrapper.
func execStar(q Query, ps *PatternSet, cat *Catalog) (AnswerStar, error) {
	res, err := Exec(context.Background(), q, ps, cat, WithAnswerStar())
	if err != nil {
		return AnswerStar{}, err
	}
	star, _ := res.Star()
	return star, nil
}

// execStarUnder is ANSWER* under inclusion dependencies through Exec —
// the test-side replacement for the deprecated AnswerStarUnder wrapper.
func execStarUnder(q Query, ps *PatternSet, cat *Catalog, inds INDSet) (AnswerStar, error) {
	res, err := Exec(context.Background(), q, ps, cat, WithAnswerStar(), WithINDs(inds))
	if err != nil {
		return AnswerStar{}, err
	}
	star, _ := res.Star()
	return star, nil
}

// execImproveUnder is ANSWER* plus domain-enumeration improvement
// through Exec — the test-side replacement for the deprecated
// RunAnswerStar + ImproveUnder pair.
func execImproveUnder(q Query, ps *PatternSet, cat *Catalog, maxCalls int) (*Rel, AnswerStar, DomResult, error) {
	res, err := Exec(context.Background(), q, ps, cat, WithImproveUnder(maxCalls))
	if err != nil {
		return nil, AnswerStar{}, DomResult{}, err
	}
	rel, err := res.Rel()
	if err != nil {
		return nil, AnswerStar{}, DomResult{}, err
	}
	star, _ := res.Star()
	_, dom, _ := res.Improved()
	return rel, star, dom, nil
}

func TestExecStreaming(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := execAnswer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []bool{false, true} {
		opts := []ExecOption{WithStreaming(), WithProfile()}
		if parallel {
			opts = append(opts, WithParallelRules())
		}
		res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), opts...)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stream()
		if s == nil {
			t.Fatal("Stream must be non-nil with WithStreaming")
		}
		if _, ok := res.Profile(); ok {
			t.Error("streamed profile must not be complete before draining")
		}
		got, err := res.Rel() // drains
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("streamed (parallel=%v) = %s, want %s", parallel, got, want)
		}
		again, err := res.Rel() // cached after the drain
		if err != nil || again != got {
			t.Errorf("second Rel must reuse the drained set: %v", err)
		}
		prof, ok := res.Profile()
		if !ok {
			t.Fatal("streamed profile must be complete after draining")
		}
		if prof.TimeToFirst <= 0 {
			t.Error("streamed profile must record time to first tuple")
		}
	}
}

func TestExecWithStats(t *testing.T) {
	q, ps, in := execFixture(t)
	st := StatsFromCardinalities(map[string]int{"R": 40, "T": 5, "S": 2, "L": 1})
	want, err := execAnswer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithStats(st))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("cost-ordered Exec = %s, want %s", got, want)
	}
}

func TestExecWithRuntimeKnobs(t *testing.T) {
	q, ps, in := execFixture(t)
	rt := NewRuntime()
	rt.BatchSize, rt.StageBuffer = 4, 2
	want, err := execAnswer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithRuntime(rt), WithStreaming())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Exec with runtime knobs = %s, want %s", got, want)
	}
}

func TestExecWithBatchSize(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := execAnswer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 1024} {
		res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps),
			WithStreaming(), WithBatchSize(n), WithStageBuffer(2))
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Rel()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("WithBatchSize(%d) = %s, want %s", n, got, want)
		}
	}
	// The options clone the runtime: a shared runtime is not mutated.
	rt := NewRuntime()
	if _, err := Exec(context.Background(), q, ps, in.MustCatalog(ps),
		WithRuntime(rt), WithBatchSize(7), WithStageBuffer(3)); err != nil {
		t.Fatal(err)
	}
	if rt.BatchSize != 0 || rt.StageBuffer != 0 {
		t.Errorf("WithBatchSize/WithStageBuffer mutated the shared runtime: %d/%d", rt.BatchSize, rt.StageBuffer)
	}
}

func TestExecBatchOptionValidation(t *testing.T) {
	q, ps, in := execFixture(t)
	cat := in.MustCatalog(ps)
	cases := []struct {
		name string
		opt  ExecOption
		want string
	}{
		{"batch zero", WithBatchSize(0), "batch size must be at least 1"},
		{"batch negative", WithBatchSize(-3), "batch size must be at least 1"},
		{"buffer zero", WithStageBuffer(0), "stage buffer must be at least 1"},
		{"buffer negative", WithStageBuffer(-1), "stage buffer must be at least 1"},
	}
	for _, c := range cases {
		_, err := Exec(context.Background(), q, ps, cat, WithStreaming(), c.opt)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestExecRejectsContradictoryOptions(t *testing.T) {
	q, ps, in := execFixture(t)
	cat := in.MustCatalog(ps)
	cases := []struct {
		name string
		opts []ExecOption
	}{
		{"naive+streaming", []ExecOption{WithNaive(in), WithStreaming()}},
		{"naive+star", []ExecOption{WithNaive(in), WithAnswerStar()}},
		{"naive+inds", []ExecOption{WithNaive(in), WithINDs(nil)}},
		{"naive+batch", []ExecOption{WithNaive(in), WithBatchSize(8)}},
		{"star+streaming", []ExecOption{WithAnswerStar(), WithStreaming()}},
		{"star+parallel", []ExecOption{WithAnswerStar(), WithParallelRules()}},
		{"profile+parallel materialized", []ExecOption{WithProfile(), WithParallelRules()}},
		{"star+partial", []ExecOption{WithAnswerStar(), WithPartialResults()}},
		{"naive+partial", []ExecOption{WithNaive(in), WithPartialResults()}},
	}
	for _, c := range cases {
		if _, err := Exec(context.Background(), q, ps, cat, c.opts...); err == nil {
			t.Errorf("%s: contradictory options must be rejected", c.name)
		}
	}
}

func TestExecHonorsContext(t *testing.T) {
	q, ps, in := execFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Exec(ctx, q, ps, in.MustCatalog(ps)); err == nil {
		t.Error("cancelled context must abort materialized Exec")
	}
	if _, err := Exec(ctx, q, nil, nil, WithNaive(in)); err == nil {
		t.Error("cancelled context must abort naive Exec")
	}
}
