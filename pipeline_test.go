package ucqn

// End-to-end pipeline test: Datalog¬ program → compile → feasibility →
// constraint optimization → cost-based order → profiled execution →
// ANSWER* — the full mediator flow, locked as one scenario.

import (
	"testing"
)

func TestFullPipeline(t *testing.T) {
	// Program: two warehouses feed Stock; Sellable joins Price;
	// Order excludes recalled SKUs.
	p := NewProgram()
	rules, err := ParseRules(`
		Stock(sku, site) :- WarehouseA(sku, site).
		Stock(sku, site) :- WarehouseB(sku, site).
		Sellable(sku, site) :- Stock(sku, site), Price(sku, pr).
		Order(sku, site) :- Sellable(sku, site), not Recalled(sku).
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	compiled, err := p.Compile("Order")
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled.Rules) != 2 {
		t.Fatalf("compiled = %s", compiled)
	}

	ps := MustParsePatterns(`WarehouseA^oo WarehouseB^oo Price^io Recalled^i`)
	res := Feasible(compiled, ps)
	if !res.Feasible {
		t.Fatalf("pipeline plan must be feasible: %v", res)
	}

	// Deployment guarantee: everything in warehouse B is recalled
	// (a pathological but instructive constraint) — the B disjunct
	// disappears at compile time.
	inds := MustParseINDs(`WarehouseB[0] < Recalled[0]`)
	opt := inds.OptimizeChase(compiled)
	if len(opt.Rules) != 1 {
		t.Fatalf("constraint must drop the B disjunct: %s", opt)
	}

	// Data satisfying the constraint.
	in := NewInstance()
	for i := 0; i < 30; i++ {
		sku := "sku" + string(rune('a'+i%26))
		in.MustAdd("WarehouseA", sku+"A", "berlin")
		in.MustAdd("Price", sku+"A", "9.99")
	}
	in.MustAdd("WarehouseB", "skuX", "paris")
	in.MustAdd("Recalled", "skuX")
	if !inds.Holds(in) {
		t.Fatal("instance must satisfy the constraint")
	}
	cat, err := in.Catalog(ps)
	if err != nil {
		t.Fatal(err)
	}

	st := StatsFromCardinalities(map[string]int{
		"WarehouseA": 30, "WarehouseB": 1, "Price": 30, "Recalled": 1,
	})
	ordered, ok := CostOrder(opt, ps, st)
	if !ok {
		t.Fatal("plan must be orderable")
	}
	answers, prof, err := execProfiled(ordered, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := execNaive(compiled, in)
	if err != nil {
		t.Fatal(err)
	}
	if !answers.Equal(truth) {
		t.Fatalf("pipeline answers differ from ground truth:\n%s\nvs\n%s", answers, truth)
	}
	if prof.TotalCalls() == 0 {
		t.Error("profile must record calls")
	}

	// ANSWER* under constraints certifies completeness.
	star, err := execStarUnder(compiled, ps, cat, inds)
	if err != nil {
		t.Fatal(err)
	}
	if !star.Complete {
		t.Errorf("constrained ANSWER* must certify completeness: %s", star.Report())
	}
	if !star.Under.Equal(truth) {
		t.Error("constrained ANSWER* answers must match ground truth")
	}
}
