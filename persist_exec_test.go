package ucqn

// Crash-recovery through the full Exec path: a cached workload runs
// over a persistence log doomed to die mid-write (FaultFS crash at a
// random byte offset, short writes, sync failures, disk-full), the
// process "restarts" by reopening the directory with a fresh cache and
// a fresh catalog under the same persistent label, and every answer
// after recovery must be byte-identical to a live evaluation. Torn
// tails and flipped bits may cost cache entries — never correctness,
// and never a failed startup.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/qcache"
	"repro/internal/qcache/persist"
)

// persistWorkload is a small fixture mix exercising scans, a bound
// join, negation, and a union — every answer-cache shape that spills.
func persistWorkload(t *testing.T) (*Instance, *PatternSet, []Query) {
	t.Helper()
	ps := MustParsePatterns(`R^oo S^io L^o`)
	in := NewInstance()
	for k := 0; k < 6; k++ {
		a, b := fmt.Sprintf("a%d", k), fmt.Sprintf("b%d", k%3)
		in.MustAdd("R", a, b)
		in.MustAdd("S", b, fmt.Sprintf("c%d", k%3))
	}
	in.MustAdd("L", "a0")
	in.MustAdd("L", "a3")
	queries := []Query{
		MustParseQuery(`Q(x, y) :- R(x, y).`),
		MustParseQuery(`Q(x, y) :- R(x, z), S(z, y).`),
		MustParseQuery(`Q(x, y) :- R(x, y), not L(x).`),
		MustParseQuery(`Q(x, y) :- R(x, y). Q(x, y) :- R(x, z), S(z, y).`),
	}
	return in, ps, queries
}

// persistGroundTruth evaluates every workload query without a cache.
func persistGroundTruth(t *testing.T, in *Instance, ps *PatternSet, queries []Query) []*Rel {
	t.Helper()
	want := make([]*Rel, len(queries))
	for i, q := range queries {
		res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps))
		if err != nil {
			t.Fatalf("ground truth q%d: %v", i, err)
		}
		rel, err := res.Rel()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rel
	}
	return want
}

// execThrough runs one query through qc over cat and returns the rows.
func execThrough(t *testing.T, qc *QueryCache, q Query, ps *PatternSet, cat *Catalog) *Rel {
	t.Helper()
	res, err := Exec(context.Background(), q, ps, cat, WithQueryCache(qc))
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	rel, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestPersistCrashRecoveryExec is the end-to-end crash property test:
// populate through Exec over a doomed filesystem, kill the log at a
// random offset (optionally flipping bits in whatever survived),
// restart with a fresh cache and catalog, and require recovery to
// succeed with every post-restart answer byte-identical to the live
// evaluation.
func TestPersistCrashRecoveryExec(t *testing.T) {
	in, ps, queries := persistWorkload(t)
	want := persistGroundTruth(t, in, ps, queries)

	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()

			// Phase 1: populate through Exec over a filesystem that dies
			// mid-write. Writes are best-effort, so the workload itself
			// must stay correct even after the crash offset.
			ffs := &persist.FaultFS{
				Inner:       persist.OSFS{},
				CrashAtByte: int64(60 + rng.Intn(3000)),
			}
			qc, _, err := qcache.OpenPersistent(dir, qcache.Options{}, persist.Options{
				FS:        ffs,
				SyncEvery: 1 + rng.Intn(4),
			})
			if err != nil {
				t.Fatalf("open doomed cache: %v", err)
			}
			cat := in.MustCatalog(ps)
			cat.SetPersistentID("crash-prop")
			for round := 0; round < 3; round++ {
				for i, q := range queries {
					if got := execThrough(t, qc, q, ps, cat); !got.Equal(want[i]) {
						t.Fatalf("pre-crash round %d q%d: got %s, want %s", round, i, got, want[i])
					}
				}
			}
			if err := qc.ClosePersist(); err != nil && !ffs.Crashed() {
				t.Fatalf("close without crash: %v", err)
			}
			if n := ffs.OpenHandles(); n != 0 {
				t.Errorf("fd leak: %d handles open after close", n)
			}

			// Half the seeds additionally corrupt whatever the crash left
			// behind: flip 1–3 random bits across the surviving files.
			if seed%2 == 0 {
				for _, name := range []string{"answers.log", "answers.snap"} {
					path := filepath.Join(dir, name)
					data, err := os.ReadFile(path)
					if err != nil || len(data) == 0 {
						continue
					}
					for f := 0; f < 1+rng.Intn(3); f++ {
						pos := rng.Intn(len(data))
						data[pos] ^= 1 << uint(rng.Intn(8))
					}
					if err := os.WriteFile(path, data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Phase 2: restart. Recovery must never fail, and answers —
			// whether served from restored entries or re-evaluated live —
			// must be byte-identical to ground truth.
			qc2, rs, err := qcache.OpenPersistent(dir, qcache.Options{}, persist.Options{})
			if err != nil {
				t.Fatalf("recovery must never fail: %v", err)
			}
			cat2 := in.MustCatalog(ps)
			cat2.SetPersistentID("crash-prop")
			for i, q := range queries {
				got := execThrough(t, qc2, q, ps, cat2)
				if !got.Equal(want[i]) {
					t.Fatalf("post-restart q%d: got %s, want %s", i, got, want[i])
				}
				gotRows, wantRows := got.Rows(), want[i].Rows()
				for j := range wantRows {
					if gotRows[j].Key() != wantRows[j].Key() {
						t.Fatalf("post-restart q%d row %d: %s != %s", i, j, gotRows[j], wantRows[j])
					}
				}
			}
			st := qc2.Stats()
			t.Logf("crash at %d: recovered %d entries (%d bytes), dropped %d (log: %d records, %d corrupt, %d truncated bytes)",
				ffs.CrashAtByte, st.PersistLoads, st.PersistBytes, st.PersistDrops,
				rs.LogRecords, rs.CorruptDrops, rs.TruncatedBytes)
			if err := qc2.ClosePersist(); err != nil {
				t.Fatalf("close recovered cache: %v", err)
			}
		})
	}
}

// TestChaosPersistCrashReopenCycles hammers one directory with
// repeated crash/reopen cycles mid-workload under rotating fault
// regimes (crash offsets, short writes, failing fsync, disk-full) with
// invalidations mixed in. Every cycle must open, serve only correct
// answers, and close without leaking goroutines or file handles.
func TestChaosPersistCrashReopenCycles(t *testing.T) {
	before := runtime.NumGoroutine()
	in, ps, queries := persistWorkload(t)
	want := persistGroundTruth(t, in, ps, queries)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))

	for cycle := 0; cycle < 8; cycle++ {
		ffs := &persist.FaultFS{Inner: persist.OSFS{}}
		switch cycle % 4 {
		case 0:
			ffs.CrashAtByte = int64(40 + rng.Intn(2000))
		case 1:
			ffs.ShortWriteEveryN = 2 + rng.Intn(3)
		case 2:
			ffs.FailSyncEveryN = 1 + rng.Intn(2)
		case 3:
			ffs.MaxBytes = int64(200 + rng.Intn(2000))
		}
		qc, rs, err := qcache.OpenPersistent(dir, qcache.Options{}, persist.Options{
			FS:           ffs,
			SyncEvery:    1 + rng.Intn(3),
			CompactBytes: int64(512 * (1 + rng.Intn(4))),
		})
		if err != nil {
			t.Fatalf("cycle %d: open: %v", cycle, err)
		}
		cat := in.MustCatalog(ps)
		cat.SetPersistentID("chaos-cycles")

		// A shuffled, repeated mix: hits, misses, and mid-cycle
		// invalidation; every answer must equal the ground truth (the
		// data never changes, so any drift is a resurrection or
		// corruption bug).
		for step := 0; step < 12; step++ {
			i := rng.Intn(len(queries))
			if got := execThrough(t, qc, queries[i], ps, cat); !got.Equal(want[i]) {
				t.Fatalf("cycle %d step %d q%d: got %s, want %s", cycle, step, i, got, want[i])
			}
			if step == 6 {
				qc.InvalidateCatalog(cat)
			}
		}
		if err := qc.ClosePersist(); err != nil && !ffs.Crashed() && ffs.ShortWriteEveryN == 0 &&
			ffs.FailSyncEveryN == 0 && ffs.MaxBytes == 0 {
			t.Fatalf("cycle %d: clean close failed: %v", cycle, err)
		}
		if n := ffs.OpenHandles(); n != 0 {
			t.Errorf("cycle %d: fd leak: %d handles open after close", cycle, n)
		}
		t.Logf("cycle %d: recovered %d, corrupt %d, stale %d, truncated %d bytes",
			cycle, rs.Entries, rs.CorruptDrops, rs.StaleDrops, rs.TruncatedBytes)
	}

	// Settle, then compare against the goroutine baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 || time.Now().After(deadline) {
			if n > before+2 {
				t.Errorf("goroutines leaked: %d before, %d after", before, n)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
