package ucqn

import (
	"testing"

	"repro/internal/workload"
)

// The paper's worked examples, exercised through the public API.
func TestPaperExamplesFacade(t *testing.T) {
	for _, ex := range workload.PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			if got := Executable(ex.Query, ex.Patterns); got != ex.Executable {
				t.Errorf("Executable = %v, want %v", got, ex.Executable)
			}
			if got := Orderable(ex.Query, ex.Patterns); got != ex.Orderable {
				t.Errorf("Orderable = %v, want %v", got, ex.Orderable)
			}
			res := Feasible(ex.Query, ex.Patterns)
			if res.Feasible != ex.Feasible {
				t.Errorf("Feasible = %v, want %v (%s)", res.Feasible, ex.Feasible, res)
			}
		})
	}
}

func TestQuickstartFlow(t *testing.T) {
	q := MustParseQuery(`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
	ps := MustParsePatterns(`B^ioo B^oio C^oo L^o`)

	if Executable(q, ps) {
		t.Fatal("not executable as written")
	}
	ordered, ok := Reorder(q, ps)
	if !ok {
		t.Fatal("must be orderable")
	}
	if !Executable(ordered, ps) {
		t.Fatal("reordered query must be executable")
	}

	in := NewInstance()
	if err := in.ParseInto(`
		B("i1", "knuth", "taocp").
		C("i1", "knuth").
		L("i2").
	`); err != nil {
		t.Fatal(err)
	}
	cat, err := in.Catalog(ps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := execAnswer(ordered, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("answer = %s", got)
	}
	st := cat.TotalStats()
	if st.Calls == 0 {
		t.Error("evaluation must have called sources")
	}
}

func TestFacadeHelpers(t *testing.T) {
	q := MustParseRule(`Q(x) :- F(x), F(y).`)
	m := Minimize(q)
	if len(m.Body) != 1 {
		t.Errorf("Minimize = %s", m)
	}
	u := MustParseQuery("Q(x) :- F(x), G(x).\nQ(x) :- F(x).")
	mu := MinimizeUnion(u)
	if len(mu.Rules) != 1 {
		t.Errorf("MinimizeUnion = %s", mu)
	}
	if !Contained(mu, u) || !Contained(u, mu) || !Equivalent(mu, u) {
		t.Error("minimized union must be equivalent")
	}
	if !Satisfiable(u) {
		t.Error("u is satisfiable")
	}
	if Satisfiable(MustParseQuery(`Q(x) :- R(x), not R(x).`)) {
		t.Error("complementary pair is unsatisfiable")
	}
	if Var("x") == Const("x") || Null.IsVar() {
		t.Error("term constructors broken")
	}
}

func TestFacadeBaselines(t *testing.T) {
	q := MustParseRule(`Q(x) :- F(x), B(x), B(y), F(z).`)
	ps := MustParsePatterns(`F^o B^i`)
	want := Feasible(MustParseQuery(`Q(x) :- F(x), B(x), B(y), F(z).`), ps).Feasible
	for name, got := range map[string]func() (bool, error){
		"CQStable":     func() (bool, error) { return CQStable(q, ps) },
		"CQStableStar": func() (bool, error) { return CQStableStar(q, ps) },
	} {
		v, err := got()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
}

func TestFeasibleLimitedBudget(t *testing.T) {
	u, ps := workload.CaseSplitFamily(8)
	if _, err := FeasibleLimited(u, ps, 3); err != ErrBudget {
		t.Errorf("tiny budget must return ErrBudget, got %v", err)
	}
	res, err := FeasibleLimited(u, ps, 10_000_000)
	if err != nil || !res.Feasible {
		t.Errorf("big budget must decide: %v %v", res, err)
	}
}

func TestAnswerStarFacade(t *testing.T) {
	q := MustParseQuery(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := MustParsePatterns(`S^o R^oo B^oi T^oo`)
	in := NewInstance().
		MustAdd("R", "a", "b").
		MustAdd("B", "a", "b").
		MustAdd("S", "c").
		MustAdd("T", "t1", "t2")
	cat, err := in.Catalog(ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := execStar(q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("must not be complete (R/S mismatch)")
	}
	improved, _, dom, err := execImproveUnder(q, ps, cat, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if improved.Len() <= res.Under.Len() {
		t.Errorf("improved %d must exceed under %d (dom=%v)", improved.Len(), res.Under.Len(), dom.Values)
	}
}
