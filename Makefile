GO ?= go

.PHONY: all build vet test test-race lint bench bench-smoke fault-smoke cache-smoke chaos-smoke serve-smoke persist-smoke adapter-smoke fleet-smoke paperbench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The runtime and source wrappers are concurrent; the race detector is
# part of the tier-1 bar, not an optional extra.
test-race:
	$(GO) test -race ./internal/sources/ ./internal/engine/ ./internal/containment/ ./internal/qcache/ ./internal/server/ .

# Deprecated-API lint: the historical facade entry points (Answer,
# AnswerParallel, AnswerProfiled, AnswerNaive, RunAnswerStar,
# AnswerStarUnder, ImproveUnder) survive only as wrappers in ucqn.go
# and extensions.go; every other first-party caller must go through
# Exec. deprecated_test.go is exempt — it is the wrapper-equivalence
# suite. See README "Migrating off the deprecated wrappers".
DEPRECATED_API = Answer|AnswerParallel|AnswerProfiled|AnswerNaive|RunAnswerStar|AnswerStarUnder|ImproveUnder

lint:
	@bad=$$( \
		grep -rnE 'ucqn\.($(DEPRECATED_API))\(' --include='*.go' cmd examples internal 2>/dev/null; \
		grep -nE '(^|[^.A-Za-z0-9_])($(DEPRECATED_API))\(' *.go 2>/dev/null \
			| grep -vE '^(ucqn|extensions)\.go:' \
			| grep -v '^deprecated_test.go:' \
			| grep -vE ':[0-9]+:\s*(//|func )' \
	); \
	if [ -n "$$bad" ]; then \
		echo "lint: deprecated entry points called outside ucqn.go/extensions.go (use Exec; see README):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "lint: no deprecated-API callers"

bench:
	$(GO) test -bench=. -benchmem .

# One pass over the runtime-heavy benchmarks (E19 dedup ablation, the
# E20 streaming pipeline, E21 degradation, E22 query cache, E23 hedged
# requests, E25 columnar evaluation): runs each once, which also
# exercises their built-in acceptance assertions — E25 requires a ≥5×
# columnar speedup at byte-identical answers and identical source
# calls, and that columnar allocs/op stay below the map-evaluator
# baseline recorded in BENCH_E25.json.
bench-smoke:
	$(GO) test -run='^$$' -bench='E19|E20|E21|E22|E23|E25' -benchtime=1x .

# Fault-injection smoke: the paper examples' underestimates with one
# source killed per run must degrade (partial answers + incompleteness
# report), never crash; run under -race since degradation exercises the
# per-rule teardown paths.
fault-smoke:
	$(GO) test -race -count=1 -run='TestFaultSmoke|TestExecPartial|TestStreamPartial|TestEvalPartial' . ./internal/engine/

# Semantic-cache smoke: every paper example executed twice through one
# shared query cache — the second (and a streamed third) pass must issue
# zero source calls and return byte-identical rows; under -race because
# the cache is shared across concurrent Exec callers in production.
cache-smoke:
	$(GO) test -race -count=1 -run='TestCacheSmoke|TestCacheConcurrentExec|TestExecQueryCacheProfile' .

# Chaos-schedule smoke: seeded randomized fault schedules (dropped and
# hung calls, injected latency, breakers, replica kills) over every
# paper example, plus the replica/hedging facade suite; answers must
# stay sound underestimates with no crashes, hangs, or goroutine leaks.
# Under -race because hedged legs race across replicas by design.
chaos-smoke:
	$(GO) test -race -count=1 -run='TestChaosSmoke|TestExecReplicas|TestHedge' . ./internal/engine/

# Serving smoke: boot the multi-tenant daemon in-process, hammer it with
# the closed-loop load generator under an overload-provoking config
# (delayed sources, two slots), and require a sound, schema-valid
# BENCH_E24.json plus a clean shutdown. ucqnload exits non-zero on any
# unsound answer, transport error, or dirty shutdown.
serve-smoke:
	$(GO) run ./cmd/ucqnload -boot -users 8 -duration 2s -quota 50 \
		-delay 1ms -concurrency 2 -queue 4 -queue-wait 5ms -out BENCH_E24.json

# Persistence smoke: the crash-safe answer cache under fire — the
# crash-recovery property suite (random kill offsets and bit flips
# through the full Exec path, recovery must never fail and never serve
# a wrong row), the chaos crash/reopen cycles (rotating fault regimes,
# no goroutine or fd leaks), the faultfs-backed persist unit tests, and
# the E26 warm-restart harness end to end. Under -race because the
# spill path runs outside the cache lock by design.
persist-smoke:
	$(GO) test -race -count=1 -run='TestPersistCrashRecoveryExec|TestChaosPersistCrashReopenCycles' .
	$(GO) test -race -count=1 ./internal/qcache/persist/
	$(GO) test -race -count=1 -run='TestRunWarmRestart|TestValidateBenchReport' ./internal/server/

# External-adapter smoke: the SQL and HTTP adapters over the in-repo
# fakedb driver and httptest backends — the fault matrix (injected
# latency, failed statements, 5xx/429/connection-refused, malformed
# responses, open breakers), the batched-pushdown engine path, the
# interner-cap hammer, and the adapter differential suite (every
# adapter answer-equivalent to the in-memory relation it mirrors).
# Under -race because batch demux and HTTP coalescing are concurrent by
# design.
adapter-smoke:
	$(GO) test -race -count=1 ./internal/adapter/...
	$(GO) test -race -count=1 -run='TestRuntimeBatch|TestBatchCapability|TestInternerCap' ./internal/engine/
	$(GO) test -race -count=1 -run='TestAdapterDifferentialEquivalence|TestAdapterBatchedJoinEquivalence' .
	$(GO) test -race -count=1 -run='TestRunBatchPushdown|TestMountCatalogConfig|TestValidateBenchReportE27' ./internal/server/

# Fleet smoke: the shared-cache fleet under fire — the kill-the-writer
# chaos suite (seeded crash/takeover/resurrection rounds on a virtual
# clock: takeover within TTL + one poll, a fenced writer's late write
# never leaks, acked entries always survive, no goroutine or fd leaks),
# the lease/follower/inbox property tests including the
# compaction-vs-follower seqlock interleavings, and the two-replica
# server E2E (warm start off a sibling, fleet-wide invalidation, E28
# harness). Under -race because replicas share one directory by design.
fleet-smoke:
	$(GO) test -race -count=1 ./internal/qcache/fleet/
	$(GO) test -race -count=1 -run='TestLease|TestFollower|TestInbox|TestReadInboxes' ./internal/qcache/persist/
	$(GO) test -race -count=1 -run='TestServerFleet|TestRunFleetShare|TestServerHealthzDegraded|TestLoadGenInvalidationMix' ./internal/server/

paperbench:
	$(GO) run ./cmd/paperbench -quick

check: build vet lint test test-race persist-smoke adapter-smoke fleet-smoke
