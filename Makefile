GO ?= go

.PHONY: all build vet test test-race bench paperbench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The runtime and source wrappers are concurrent; the race detector is
# part of the tier-1 bar, not an optional extra.
test-race:
	$(GO) test -race ./internal/sources/ ./internal/engine/ .

bench:
	$(GO) test -bench=. -benchmem .

paperbench:
	$(GO) run ./cmd/paperbench -quick

check: build vet test test-race
