package ucqn

// Semantic query cache tests at the facade level: the correctness
// property (cached Exec ≡ uncached Exec on randomized workloads and
// their α-renamed / literal-padded variants, materialized and
// streaming, strict and partial), the cache smoke suite (`make
// cache-smoke`: every paper example twice through a shared cache — the
// second pass must issue zero source calls and return byte-identical
// answers, drained streams included), and a concurrent-Exec hammer.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// execRel runs Exec and materializes, failing the test on any error.
func execRel(t *testing.T, q Query, ps *PatternSet, cat *Catalog, opts ...ExecOption) *Rel {
	t.Helper()
	res, err := Exec(context.Background(), q, ps, cat, opts...)
	if err != nil {
		t.Fatalf("Exec(%s): %v", q, err)
	}
	rel, err := res.Rel()
	if err != nil {
		t.Fatalf("Rel(%s): %v", q, err)
	}
	return rel
}

// cacheVariants are the semantically identical rewrites every cached
// submission must survive.
func cacheVariants(u Query, tag string) []Query {
	return []Query{
		u,
		workload.AlphaRename(u, tag),
		workload.PadRedundant(u),
		workload.PadRedundant(workload.AlphaRename(u, tag+"p")),
	}
}

// TestCacheCorrectnessProperty is the cache's acceptance property:
// over randomized schemas, patterns, queries, and instances, Exec
// through a shared QueryCache returns exactly what uncached Exec
// returns — for the query itself and for α-renamed and
// literal-padded resubmissions, materialized and streamed — and
// WithPartialResults reports the same completeness. Resubmissions must
// hit the plan cache.
func TestCacheCorrectnessProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := workload.New(300 + seed)
			s := g.Schema(4, 1, 2)
			ps := g.Patterns(s, 0.4, 2)
			cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}

			u := g.UCQ(s, 2, cfg)
			ordered, ok := Reorder(u, ps)
			if !ok {
				t.Skip("not orderable under the drawn patterns")
			}
			in := engine.NewInstance()
			if err := in.LoadFacts(g.Facts(s, 12, 6)); err != nil {
				t.Fatal(err)
			}
			cat, err := in.Catalog(ps)
			if err != nil {
				t.Fatal(err)
			}

			want := execRel(t, ordered, ps, cat)
			wantInc, ok := func() (Incompleteness, bool) {
				res, err := Exec(context.Background(), ordered, ps, cat, WithPartialResults())
				if err != nil {
					t.Fatal(err)
				}
				if _, err := res.Rel(); err != nil {
					t.Fatal(err)
				}
				return res.Incompleteness()
			}()
			if !ok {
				t.Fatal("uncached partial run must report incompleteness")
			}

			qc := NewQueryCache(QueryCacheOptions{})
			for vi, v := range cacheVariants(ordered, fmt.Sprint(seed)) {
				// Materialized, with the profile proving cache behaviour.
				res, err := Exec(context.Background(), v, ps, cat, WithQueryCache(qc), WithProfile())
				if err != nil {
					t.Fatalf("variant %d: %v", vi, err)
				}
				rel, err := res.Rel()
				if err != nil {
					t.Fatal(err)
				}
				if !rel.Equal(want) {
					t.Fatalf("variant %d: cached answer %s != uncached %s for\n%s", vi, rel, want, v)
				}
				prof, _ := res.Profile()
				if vi > 0 && prof.Cache.PlanHits == 0 {
					t.Fatalf("variant %d must hit the plan cache", vi)
				}

				// Streamed.
				sres, err := Exec(context.Background(), v, ps, cat, WithQueryCache(qc), WithStreaming())
				if err != nil {
					t.Fatal(err)
				}
				srel, err := sres.Stream().Drain()
				if err != nil {
					t.Fatal(err)
				}
				if !srel.Equal(want) {
					t.Fatalf("variant %d: cached stream %s != uncached %s", vi, srel, want)
				}

				// Partial-results mode: healthy catalog, so the report must
				// stay complete with the uncached rule accounting.
				pres, err := Exec(context.Background(), v, ps, cat, WithQueryCache(qc), WithPartialResults())
				if err != nil {
					t.Fatal(err)
				}
				prel, err := pres.Rel()
				if err != nil {
					t.Fatal(err)
				}
				if !prel.Equal(want) {
					t.Fatalf("variant %d: cached partial answer differs", vi)
				}
				inc, ok := pres.Incompleteness()
				if !ok || !inc.Complete() {
					t.Fatalf("variant %d: cached partial run must be complete, got %+v/%v", vi, inc, ok)
				}
				if inc.RulesTotal != wantInc.RulesTotal {
					t.Fatalf("variant %d: RulesTotal = %d, want %d", vi, inc.RulesTotal, wantInc.RulesTotal)
				}
			}
		})
	}
}

// smokeQuery picks the executable form of a paper example: the query's
// own reordering when orderable, else its PLAN* underestimate.
func smokeQuery(ex workload.PaperExample) (Query, bool) {
	if ordered, ok := Reorder(ex.Query, ex.Patterns); ok {
		return ordered, true
	}
	under := Plan(ex.Query, ex.Patterns).Under
	for _, r := range under.Rules {
		if !r.False {
			return under, true
		}
	}
	return Query{}, false
}

// TestCacheSmoke is the `make cache-smoke` suite: every paper example
// executed twice through one shared cache. The second pass — and a
// third, streamed, pass — must issue zero source calls and yield
// byte-identical rows.
func TestCacheSmoke(t *testing.T) {
	qc := NewQueryCache(QueryCacheOptions{})
	for _, ex := range workload.PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			u, ok := smokeQuery(ex)
			if !ok {
				t.Skip("no executable form")
			}
			cat := paperInstance(ex.Patterns).MustCatalog(ex.Patterns)

			first := execRel(t, u, ex.Patterns, cat, WithQueryCache(qc))
			afterFirst := cat.TotalStats().Calls

			second := execRel(t, u, ex.Patterns, cat, WithQueryCache(qc))
			if d := cat.TotalStats().Calls - afterFirst; d != 0 {
				t.Errorf("second pass issued %d source calls, want 0", d)
			}
			assertSameRows(t, "second pass", second, first)

			sres, err := Exec(context.Background(), u, ex.Patterns, cat, WithQueryCache(qc), WithStreaming())
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := sres.Stream().Drain()
			if err != nil {
				t.Fatal(err)
			}
			if d := cat.TotalStats().Calls - afterFirst; d != 0 {
				t.Errorf("streamed replay issued %d source calls, want 0", d)
			}
			assertSameRows(t, "streamed replay", streamed, first)
		})
	}
}

// assertSameRows requires got and want to agree row for row, in order —
// byte-identical replays, not merely set equality.
func assertSameRows(t *testing.T, what string, got, want *Rel) {
	t.Helper()
	g, w := got.Rows(), want.Rows()
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", what, len(g), len(w))
	}
	for i := range g {
		if g[i].Key() != w[i].Key() {
			t.Fatalf("%s: row %d = %s, want %s", what, i, g[i], w[i])
		}
	}
}

// TestCacheConcurrentExec hammers one cache from many goroutines mixing
// hits, misses, α-variants, streaming, and invalidation; run under
// -race it is the cache's concurrency certificate.
func TestCacheConcurrentExec(t *testing.T) {
	qc := NewQueryCache(QueryCacheOptions{MaxPlanEntries: 8, MaxAnswerEntries: 8})
	q := MustParseQuery("Q(x) :- R(x).\nQ(x) :- S(x).")
	patterns := MustParsePatterns("R^o S^o")
	in := NewInstance()
	in.MustAdd("R", "a").MustAdd("R", "b").MustAdd("S", "c")
	cat := in.MustCatalog(patterns)
	want := execRel(t, q, patterns, cat)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v := q
				if i%2 == 1 {
					v = workload.AlphaRename(q, fmt.Sprintf("%d_%d", w, i))
				}
				var opts []ExecOption
				opts = append(opts, WithQueryCache(qc))
				if i%3 == 0 {
					opts = append(opts, WithStreaming())
				}
				res, err := Exec(context.Background(), v, patterns, cat, opts...)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				rel, err := res.Rel()
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !rel.Equal(want) {
					t.Errorf("worker %d: wrong answer %s", w, rel)
					return
				}
				if i%10 == 9 {
					cat.Invalidate()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestExecQueryCacheProfile pins the facade-level observability: the
// ExecProfile's cache counters across a miss, a full hit, and a
// partial hit after invalidation.
func TestExecQueryCacheProfile(t *testing.T) {
	qc := NewQueryCache(QueryCacheOptions{})
	q := MustParseQuery("Q(x) :- R(x).\nQ(x) :- S(x).")
	patterns := MustParsePatterns("R^o S^o")
	in := NewInstance()
	in.MustAdd("R", "a").MustAdd("S", "b")
	cat := in.MustCatalog(patterns)

	res, err := Exec(context.Background(), q, patterns, cat, WithQueryCache(qc), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := res.Profile()
	if !ok || prof.Cache.PlanHits != 0 || prof.Cache.AnswerHits != 0 {
		t.Fatalf("cold run profile = %+v/%v, want no cache hits", prof, ok)
	}

	res, err = Exec(context.Background(), q, patterns, cat, WithQueryCache(qc), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	prof, _ = res.Profile()
	if prof.Cache.PlanHits != 1 || prof.Cache.AnswerHits != 1 {
		t.Fatalf("hot run profile = %+v, want plan and answer hits", prof)
	}

	// After invalidation the plan still hits; the answers re-execute.
	cat.Invalidate()
	res, err = Exec(context.Background(), q, patterns, cat, WithQueryCache(qc), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	prof, _ = res.Profile()
	if prof.Cache.PlanHits != 1 || prof.Cache.AnswerHits != 0 {
		t.Fatalf("post-invalidation profile = %+v, want a plan hit and live answers", prof)
	}
	if _, err := res.Rel(); err != nil {
		t.Fatal(err)
	}

	stats := qc.Stats()
	if stats.PlanMisses != 1 || stats.PlanHits != 2 || stats.AnswerHits != 1 {
		t.Fatalf("cache stats = %+v", stats)
	}
}
