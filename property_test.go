package ucqn

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/workload"
)

// randomSetup draws a schema, pattern set, and query generator config
// small enough that the Π₂ᴾ containment check stays tractable.
func randomSetup(seed int64) (*workload.Gen, workload.Schema, *PatternSet, workload.QueryConfig) {
	g := workload.New(seed)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.5, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	return g, s, ps, cfg
}

// Proposition 4: Q ⊑ ans(Q) for every query.
func TestProposition4Property(t *testing.T) {
	g, s, ps, cfg := randomSetup(101)
	for i := 0; i < 150; i++ {
		u := g.UCQ(s, 2, cfg)
		a := AnswerablePart(u, ps)
		if !Contained(u, a) {
			t.Fatalf("Proposition 4 violated for\n%s\nans =\n%s\npatterns %s", u, a, ps)
		}
	}
}

// Corollary 17: Q is feasible iff ans(Q) ⊑ Q. FEASIBLE must agree with
// the direct containment formulation.
func TestCorollary17Property(t *testing.T) {
	g, s, ps, cfg := randomSetup(102)
	checked := 0
	for i := 0; i < 120; i++ {
		u := g.UCQ(s, 2, cfg)
		res, err := FeasibleLimited(u, ps, 200_000)
		if err != nil {
			continue
		}
		a := AnswerablePart(u, ps)
		direct := !a.HasNull() && Contained(a.DropFalseRules(), u)
		if a.HasNull() {
			direct = false
		}
		if res.Feasible != direct {
			t.Fatalf("FEASIBLE (%v) disagrees with ans(Q) ⊑ Q (%v) on\n%s\npatterns %s", res.Feasible, direct, u, ps)
		}
		checked++
	}
	if checked < 60 {
		t.Errorf("only %d/120 cases checked within budget", checked)
	}
}

// Theorem 16: ans(Q) is minimal among executable queries containing Q.
// We construct E executable and Q ⊑ E by construction (Q adds literals
// to E's rules and drops rules), then verify Q ⊑ ans(Q) ⊑ E.
func TestTheorem16Property(t *testing.T) {
	g, s, ps, cfg := randomSetup(103)
	tested := 0
	for i := 0; i < 500 && tested < 60; i++ {
		e := g.UCQ(s, 2, cfg)
		ordered, ok := Reorder(e, ps)
		if !ok {
			continue // need an executable E
		}
		// Build Q ⊑ E: keep the first rule only, with an extra literal.
		q := logic.UCQ{Rules: []logic.CQ{ordered.Rules[0].Clone()}}
		extra := g.CQ(s, cfg)
		q.Rules[0].Body = append(q.Rules[0].Body, extra.Body...)
		if !Contained(q, ordered) {
			t.Fatalf("construction broken: Q not contained in E\nQ=%s\nE=%s", q, ordered)
		}
		a := AnswerablePart(q, ps).DropFalseRules()
		if a.HasNull() {
			continue
		}
		if !Contained(q, a) {
			t.Fatalf("Q ⊑ ans(Q) violated\nQ=%s\nans=%s", q, a)
		}
		if !Contained(a, ordered) {
			t.Fatalf("Theorem 16 violated: ans(Q) ⋢ E\nQ=%s\nans=%s\nE=%s\npatterns %s", q, a, ordered, ps)
		}
		tested++
	}
	if tested < 30 {
		t.Errorf("only %d cases engaged; generator mis-tuned", tested)
	}
}

// Theorem 18 reduction: P ⊑ Q iff the reduced query is feasible.
func TestTheorem18ReductionProperty(t *testing.T) {
	g, s, _, cfg := randomSetup(104)
	cfg.NegLits = 0 // keep the containment instances cheap and exact
	agree, disagreeBudget := 0, 0
	for i := 0; i < 80; i++ {
		p := g.UCQ(s, 2, cfg)
		q := g.UCQ(s, 2, cfg)
		want := Contained(p, q)
		reduced, rps, err := ReduceContToFeasible(p, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FeasibleLimited(reduced, rps, 500_000)
		if err != nil {
			disagreeBudget++
			continue
		}
		if res.Feasible != want {
			t.Fatalf("Theorem 18 reduction broken: contained=%v feasible=%v\nP=%s\nQ=%s\nreduced=%s\npatterns=%s",
				want, res.Feasible, p, q, reduced, rps)
		}
		agree++
	}
	if agree < 50 {
		t.Errorf("only %d/80 decided (budget exceeded %d times)", agree, disagreeBudget)
	}
}

// Proposition 20 reduction: P ⊑ Q iff L is feasible, for CQ¬ pairs.
func TestProposition20ReductionProperty(t *testing.T) {
	g, s, _, cfg := randomSetup(105)
	agree := 0
	for i := 0; i < 80; i++ {
		p := g.CQ(s, cfg)
		q := g.CQ(s, cfg)
		q.HeadArgs = append([]logic.Term(nil), p.HeadArgs...)
		// Head variables of q must occur in q's body positively; force by
		// reusing p's head only when q already covers it.
		if !q.HeadSafe() {
			continue
		}
		want := Contained(logic.AsUnion(p), logic.AsUnion(q))
		l, lps, err := ReduceContCQToFeasible(p, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FeasibleLimited(logic.AsUnion(l), lps, 500_000)
		if err != nil {
			continue
		}
		if res.Feasible != want {
			t.Fatalf("Proposition 20 reduction broken: contained=%v feasible=%v\nP=%s\nQ=%s\nL=%s\npatterns=%s",
				want, res.Feasible, p, q, l, lps)
		}
		agree++
	}
	if agree < 20 {
		t.Errorf("only %d/80 cases engaged", agree)
	}
}

// Engine agreement: for executable queries, evaluation through limited
// sources equals ground-truth evaluation.
func TestEngineAgreementProperty(t *testing.T) {
	g, s, ps, cfg := randomSetup(106)
	tested := 0
	for i := 0; i < 150 && tested < 80; i++ {
		u := g.UCQ(s, 2, cfg)
		ordered, ok := Reorder(u, ps)
		if !ok {
			continue
		}
		in := engine.NewInstance()
		if err := in.LoadFacts(g.Facts(s, 12, 6)); err != nil {
			t.Fatal(err)
		}
		cat, err := in.Catalog(ps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := execAnswer(ordered, ps, cat)
		if err != nil {
			t.Fatalf("Answer failed on executable query %s: %v", ordered, err)
		}
		want, err := execNaive(u, in)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("engine disagreement on\n%s\nlimited: %s\nnaive: %s", ordered, got, want)
		}
		tested++
	}
	if tested < 40 {
		t.Errorf("only %d cases engaged", tested)
	}
}

// ANSWER* sandwich: under ⊆ truth, and every true answer is covered by
// some overestimate row (equal on non-null positions).
func TestEstimateSandwichProperty(t *testing.T) {
	g, s, ps, cfg := randomSetup(107)
	for i := 0; i < 100; i++ {
		u := g.UCQ(s, 2, cfg)
		in := engine.NewInstance()
		if err := in.LoadFacts(g.Facts(s, 10, 5)); err != nil {
			t.Fatal(err)
		}
		cat, err := in.Catalog(ps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := execStar(u, ps, cat)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := execNaive(u, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Under.Rows() {
			if !truth.Contains(row) {
				t.Fatalf("underestimate unsound: %s not a true answer of\n%s", row, u)
			}
		}
		for _, row := range truth.Rows() {
			if !coveredBy(row, res.Over) {
				t.Fatalf("overestimate incomplete: true answer %s not covered for\n%s\nover = %s", row, u, res.Over)
			}
		}
		if res.Complete && !res.Under.Equal(truth) {
			t.Fatalf("ANSWER* claimed completeness falsely for\n%s", u)
		}
	}
}

// coveredBy reports whether some row of rel equals row on all non-null
// positions (the subsumption reading of null, Example 7).
func coveredBy(row engine.Row, rel *engine.Rel) bool {
	if rel.Contains(row) {
		return true
	}
	for _, o := range rel.Rows() {
		if len(o) != len(row) {
			continue
		}
		match := true
		for j := range o {
			if !o[j].Null && o[j] != row[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Feasibility is invariant under rule order and body order permutations.
func TestFeasibilityPermutationInvariance(t *testing.T) {
	g, s, ps, cfg := randomSetup(108)
	for i := 0; i < 40; i++ {
		u := g.UCQ(s, 2, cfg)
		res1, err1 := FeasibleLimited(u, ps, 200_000)
		perm := u.Clone()
		perm.Rules[0], perm.Rules[1] = perm.Rules[1], perm.Rules[0]
		for r := range perm.Rules {
			perm.Rules[r] = workload.Reversed(perm.Rules[r])
		}
		res2, err2 := FeasibleLimited(perm, ps, 200_000)
		if err1 != nil || err2 != nil {
			continue
		}
		if res1.Feasible != res2.Feasible {
			t.Fatalf("feasibility not permutation-invariant:\n%s (%v)\nvs\n%s (%v)", u, res1.Feasible, perm, res2.Feasible)
		}
	}
}

// Parser round trip under quick: printing any generated query and
// re-parsing yields the same query.
func TestParserRoundTripQuick(t *testing.T) {
	g, s, _, cfg := randomSetup(109)
	f := func(n uint8) bool {
		_ = n
		u := g.UCQ(s, 1+int(n)%3, cfg)
		r, err := ParseQuery(u.String())
		if err != nil {
			t.Logf("reparse error: %v for\n%s", err, u)
			return false
		}
		return r.Equal(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Rel set algebra properties under quick.
func TestRelAlgebraQuick(t *testing.T) {
	mkRel := func(vals []uint8) *engine.Rel {
		r := engine.NewRel()
		for _, v := range vals {
			r.Add(engine.RowOf(fmt.Sprintf("a%d", v%8), fmt.Sprintf("b%d", v/8%4)))
		}
		return r
	}
	f := func(xs, ys []uint8) bool {
		a, b := mkRel(xs), mkRel(ys)
		d := a.Minus(b)
		for _, row := range d.Rows() {
			if b.Contains(row) || !a.Contains(row) {
				return false
			}
		}
		// (a \ b) ∪ (a ∩ b) = a
		u := engine.NewRel()
		u.AddAll(d)
		for _, row := range a.Rows() {
			if b.Contains(row) {
				u.Add(row)
			}
		}
		return u.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Containment is reflexive and transitive on generated queries.
func TestContainmentOrderProperties(t *testing.T) {
	g, s, _, cfg := randomSetup(110)
	cfg.NegLits = 0
	for i := 0; i < 60; i++ {
		a := g.UCQ(s, 1, cfg)
		if !Contained(a, a) {
			t.Fatalf("containment not reflexive on %s", a)
		}
		// a ∧ extra ⊑ a.
		b := a.Clone()
		b.Rules[0].Body = append(b.Rules[0].Body, g.CQ(s, cfg).Body...)
		if !Contained(b, a) {
			t.Fatalf("adding literals must narrow: %s ⋢ %s", b, a)
		}
		// a ⊑ a ∨ c.
		c := g.UCQ(s, 1, cfg)
		union := logic.UCQ{Rules: append(a.Clone().Rules, c.Rules...)}
		if !Contained(a, union) {
			t.Fatalf("disjunct must be contained in union")
		}
	}
}

// sameRowsInOrder reports whether two relations hold byte-identical
// rows in the same insertion order.
func sameRowsInOrder(a, b *Rel) bool {
	ra, rb := a.Rows(), b.Rows()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if len(ra[i]) != len(rb[i]) {
			return false
		}
		for j := range ra[i] {
			if ra[i][j] != rb[i][j] {
				return false
			}
		}
	}
	return true
}

// Columnar/map differential: the columnar batch evaluator (the
// default) must be observationally identical to the historical
// map-based evaluator (Runtime.MapEval) on random workloads with
// negation, constants, and repeated variables — byte-identical rows in
// the same insertion order, and the same number of source calls. The
// streamed pipeline, drained, must match both.
func TestColumnarMatchesMapEvaluator(t *testing.T) {
	g := workload.New(311)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.3, 2) // mostly-output patterns: more orderable draws
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	colRT := NewRuntime()
	mapRT := NewRuntime()
	mapRT.MapEval = true
	ctx := context.Background()
	tested := 0
	for i := 0; i < 250; i++ {
		u := g.UCQ(s, 2, cfg)
		ordered, ok := Reorder(u, ps)
		if !ok {
			continue
		}
		in := engine.NewInstance()
		if err := in.LoadFacts(g.Facts(s, 10, 5)); err != nil {
			t.Fatal(err)
		}
		catCol, catMap := in.MustCatalog(ps), in.MustCatalog(ps)
		gotCol, err := colRT.Answer(ctx, ordered, ps, catCol)
		if err != nil {
			t.Fatalf("columnar failed on executable query %s: %v", ordered, err)
		}
		gotMap, err := mapRT.Answer(ctx, ordered, ps, catMap)
		if err != nil {
			t.Fatalf("map evaluator failed on executable query %s: %v", ordered, err)
		}
		if !sameRowsInOrder(gotCol, gotMap) {
			t.Fatalf("evaluators disagree on\n%s\ncolumnar: %s\nmap:      %s", ordered, gotCol, gotMap)
		}
		if cc, mc := catCol.TotalStats().Calls, catMap.TotalStats().Calls; cc != mc {
			t.Fatalf("call counts differ on\n%s\ncolumnar %d vs map %d", ordered, cc, mc)
		}
		stream, err := colRT.Stream(ctx, ordered, ps, in.MustCatalog(ps))
		if err != nil {
			t.Fatalf("stream start failed on %s: %v", ordered, err)
		}
		drained, err := stream.Drain()
		if err != nil {
			t.Fatalf("stream failed on %s: %v", ordered, err)
		}
		if !sameRowsInOrder(drained, gotMap) {
			t.Fatalf("streamed drain diverges on\n%s\nstream: %s\nmap:    %s", ordered, drained, gotMap)
		}
		tested++
	}
	if tested < 40 {
		t.Errorf("only %d cases engaged", tested)
	}
}
