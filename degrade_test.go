package ucqn

// Graceful-degradation facade tests and the fault-injection smoke suite
// (`make fault-smoke`): the paper's worked examples executed through
// their PLAN* underestimates with one source killed must degrade — drop
// the disjuncts that need the dead source, answer with the rest, and say
// so — never crash or hang.

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// degradeFixtureQ is a two-rule union where killing S leaves exactly
// rule 1's answers.
func degradeFixtureQ(t *testing.T) (Query, *PatternSet, *Instance) {
	t.Helper()
	q := MustParseQuery(`
		Q(x) :- R(x).
		Q(x) :- S(x).
	`)
	ps := MustParsePatterns(`R^o S^o`)
	in := NewInstance()
	in.MustAdd("R", "a").MustAdd("R", "b").MustAdd("S", "c")
	return q, ps, in
}

// fastRuntime is a runtime with cheap retries for fault tests.
func fastRuntime() *Runtime {
	rt := NewRuntime()
	rt.Retry.MaxAttempts = 2
	rt.Retry.BaseDelay = 0
	return rt
}

// killSource rebuilds the catalog with relation dead permanently failing
// behind a circuit breaker; every other source is passed through.
func killSource(t testing.TB, in *Instance, ps *PatternSet, dead string) (*Catalog, *FlakySource, *Breaker) {
	t.Helper()
	base := in.MustCatalog(ps)
	var srcs []Source
	var flaky *FlakySource
	var brk *Breaker
	for _, name := range base.Names() {
		src := base.Source(name)
		if name == dead {
			flaky = NewFlakySource(src, FlakyConfig{FailEveryN: 1})
			brk = NewBreaker(flaky, BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour})
			src = brk
		}
		srcs = append(srcs, src)
	}
	cat, err := NewCatalog(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	return cat, flaky, brk
}

func TestExecPartialResultsMaterialized(t *testing.T) {
	q, ps, in := degradeFixtureQ(t)
	cat, _, _ := killSource(t, in, ps, "S")

	// Strict mode surfaces the failure.
	if _, err := Exec(context.Background(), q, ps, cat, WithRuntime(fastRuntime())); err == nil {
		t.Fatal("strict Exec must fail with a dead source")
	}

	res, err := Exec(context.Background(), q, ps, cat, WithRuntime(fastRuntime()), WithPartialResults())
	if err != nil {
		t.Fatalf("partial Exec must degrade, not fail: %v", err)
	}
	rel, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Exec(context.Background(), MustParseQuery(`Q(x) :- R(x).`), ps, in.MustCatalog(ps))
	wantRel, _ := want.Rel()
	if !rel.Equal(wantRel) {
		t.Errorf("degraded answer = %s, want the healthy disjunct's %s", rel, wantRel)
	}
	inc, ok := res.Incompleteness()
	if !ok {
		t.Fatal("Incompleteness must be available with WithPartialResults")
	}
	if inc.Complete() {
		t.Fatal("report must flag the dropped disjunct")
	}
	if got := inc.FailedSources(); len(got) != 1 || got[0] != "S" {
		t.Errorf("FailedSources = %v, want [S]", got)
	}
	if r, ok := inc.RuleRatio(); !ok || r != 0.5 {
		t.Errorf("RuleRatio = %v/%v, want 0.5", r, ok)
	}
}

func TestExecPartialResultsStreaming(t *testing.T) {
	q, ps, in := degradeFixtureQ(t)
	matCat, _, _ := killSource(t, in, ps, "S")
	matRes, err := Exec(context.Background(), q, ps, matCat, WithRuntime(fastRuntime()), WithPartialResults())
	if err != nil {
		t.Fatal(err)
	}
	want, err := matRes.Rel()
	if err != nil {
		t.Fatal(err)
	}

	strCat, _, _ := killSource(t, in, ps, "S")
	res, err := Exec(context.Background(), q, ps, strCat, WithRuntime(fastRuntime()), WithPartialResults(), WithStreaming())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Incompleteness(); ok {
		t.Error("Incompleteness must not be readable before the stream finished")
	}
	got, err := res.Rel() // drains
	if err != nil {
		t.Fatalf("partial stream must not surface the degraded failure: %v", err)
	}
	g, w := got.Rows(), want.Rows()
	if len(g) != len(w) {
		t.Fatalf("streamed degraded answer has %d rows, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i].Key() != w[i].Key() {
			t.Fatalf("row %d = %s, want %s (byte-for-byte with materialized)", i, g[i], w[i])
		}
	}
	inc, ok := res.Incompleteness()
	if !ok || inc.Complete() {
		t.Fatalf("stream incompleteness = %+v/%v, want the recorded failure", inc, ok)
	}
	if got := inc.FailedSources(); len(got) != 1 || got[0] != "S" {
		t.Errorf("FailedSources = %v, want [S]", got)
	}
}

// paperInstance mirrors the engine tests' deterministic instance: enough
// value sharing that joins produce repeated keys.
func paperInstance(ps *PatternSet) *Instance {
	in := NewInstance()
	dom := []string{"a", "b", "c", "d"}
	for _, rel := range ps.Relations() {
		ar := ps.Arity(rel)
		for i := 0; i < 8; i++ {
			vals := make([]string, ar)
			for j := range vals {
				vals[j] = dom[(i+2*j)%len(dom)]
			}
			in.MustAdd(rel, vals...)
		}
	}
	return in
}

// TestFaultSmokePaperExamples is the fault-injection smoke suite: every
// paper example's executable underestimate runs with each of its sources
// killed in turn. The run must degrade — answer exactly with the rules
// that avoid the dead source, name it in the report — and the breaker
// must cap the dead source's traffic at its window.
func TestFaultSmokePaperExamples(t *testing.T) {
	for _, ex := range workload.PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			under := Plan(ex.Query, ex.Patterns).Under
			in := paperInstance(ex.Patterns)
			rels := map[string]bool{}
			for _, rule := range under.Rules {
				if rule.False {
					continue
				}
				for name := range rule.Relations() {
					rels[name] = true
				}
			}
			if len(rels) == 0 {
				t.Skip("underestimate has no executable rules to degrade")
			}
			for dead := range rels {
				t.Run("dead="+dead, func(t *testing.T) {
					// The certified expectation: the answer of the rules
					// that do not touch the dead source, on healthy data.
					var kept Query
					kept.Rules = nil
					for _, rule := range under.Rules {
						if rule.False {
							continue
						}
						if _, uses := rule.Relations()[dead]; !uses {
							kept.Rules = append(kept.Rules, rule)
						}
					}
					var wantRows int
					if len(kept.Rules) > 0 {
						want, err := execAnswer(kept, ex.Patterns, paperInstance(ex.Patterns).MustCatalog(ex.Patterns))
						if err != nil {
							t.Fatal(err)
						}
						wantRows = want.Len()
					}

					cat, flaky, _ := killSource(t, in, ex.Patterns, dead)
					res, err := Exec(context.Background(), under, ex.Patterns, cat,
						WithRuntime(fastRuntime()), WithPartialResults())
					if err != nil {
						t.Fatalf("degraded run crashed: %v", err)
					}
					rel, err := res.Rel()
					if err != nil {
						t.Fatal(err)
					}
					if rel.Len() != wantRows {
						t.Errorf("degraded answer has %d rows, want the %d of the surviving rules", rel.Len(), wantRows)
					}
					inc, ok := res.Incompleteness()
					if !ok {
						t.Fatal("no incompleteness report")
					}
					for _, src := range inc.FailedSources() {
						if src != dead {
							t.Errorf("reported failed source %s, only %s was killed", src, dead)
						}
					}
					for _, f := range inc.Failed {
						if _, uses := f.Rule.Relations()[dead]; !uses {
							t.Errorf("dropped rule %s does not touch %s", f.Rule, dead)
						}
					}
					if got := flaky.Injected(); got > 4 {
						t.Errorf("dead source %s absorbed %d calls, want the breaker to cap at its window (4)", dead, got)
					}
				})
			}
		})
	}
}

// The ratio vocabulary survives the facade: a degraded run's report
// renders the Figure-4-shaped completeness lines.
func TestExecPartialReportVocabulary(t *testing.T) {
	q, ps, in := degradeFixtureQ(t)
	cat, _, _ := killSource(t, in, ps, "S")
	res, err := Exec(context.Background(), q, ps, cat, WithRuntime(fastRuntime()), WithPartialResults())
	if err != nil {
		t.Fatal(err)
	}
	inc, _ := res.Incompleteness()
	report := inc.Report()
	for _, want := range []string{"underestimate", "failed sources: S", "1 of 2 disjuncts"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}
