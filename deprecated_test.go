package ucqn

// Wrapper-equivalence tests: every deprecated entry point must agree
// with the Exec option that replaces it. This file is the only
// first-party code (outside ucqn.go and extensions.go, where the
// wrappers live) allowed to call the deprecated API — `make lint`
// exempts it by name and fails on any other caller.

import (
	"context"
	"testing"
)

func TestExecDefaultMatchesAnswer(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := Answer(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Exec = %s, want %s", got, want)
	}
	if res.Stream() != nil {
		t.Error("Stream must be nil without WithStreaming")
	}
	if _, ok := res.Profile(); ok {
		t.Error("Profile must be absent without WithProfile")
	}
}

func TestExecParallelRules(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := AnswerParallel(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithParallelRules())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Exec parallel = %s, want %s", got, want)
	}
}

func TestExecProfile(t *testing.T) {
	q, ps, in := execFixture(t)
	_, wantProf, err := AnswerProfiled(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := res.Profile()
	if !ok {
		t.Fatal("profile must be recorded with WithProfile")
	}
	if prof.TotalCalls() != wantProf.TotalCalls() || prof.TotalDeduped() != wantProf.TotalDeduped() {
		t.Errorf("profile traffic %d/%d, want %d/%d",
			prof.TotalCalls(), prof.TotalDeduped(), wantProf.TotalCalls(), wantProf.TotalDeduped())
	}
	if prof.Elapsed <= 0 {
		t.Error("profile must carry wall-clock time")
	}
}

func TestExecNaive(t *testing.T) {
	q, _, in := execFixture(t)
	want, err := AnswerNaive(q, in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, nil, nil, WithNaive(in))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Exec naive = %s, want %s", got, want)
	}
}

func TestExecAnswerStar(t *testing.T) {
	q, ps, in := execFixture(t)
	want, err := RunAnswerStar(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithAnswerStar())
	if err != nil {
		t.Fatal(err)
	}
	star, ok := res.Star()
	if !ok {
		t.Fatal("Star must be populated with WithAnswerStar")
	}
	if star.Report() != want.Report() {
		t.Errorf("reports differ:\n%s\nvs\n%s", star.Report(), want.Report())
	}
	rel, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(want.Under) {
		t.Errorf("Rel must be the underestimate: %s vs %s", rel, want.Under)
	}
}

func TestExecStarUnderINDs(t *testing.T) {
	q := MustParseQuery(`
		Q(x) :- A(x).
		Q(x) :- B(x, z), not C(z).
	`)
	ps := MustParsePatterns(`A^o B^oo C^i`)
	inds := MustParseINDs(`B[1] < C[0]`)
	in := NewInstance().MustAdd("A", "a").MustAdd("B", "b", "c").MustAdd("C", "c")
	want, err := AnswerStarUnder(q, ps, in.MustCatalog(ps), inds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithAnswerStar(), WithINDs(inds))
	if err != nil {
		t.Fatal(err)
	}
	star, ok := res.Star()
	if !ok {
		t.Fatal("Star must be populated")
	}
	if star.Report() != want.Report() {
		t.Errorf("reports differ:\n%s\nvs\n%s", star.Report(), want.Report())
	}
}

func TestExecImproveUnder(t *testing.T) {
	// S(y, x) is unanswerable as written (y has no binder), so PLAN*
	// under-approximates; domain enumeration re-admits it through dom(y).
	q := MustParseQuery(`Q(x) :- R(x), S(y, x).`)
	ps := MustParsePatterns(`R^o S^io`)
	in := NewInstance().MustAdd("R", "a").MustAdd("R", "b").MustAdd("S", "a", "b")

	star, err := RunAnswerStar(q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	wantRel, wantRules, wantDom, err := ImproveUnder(star, ps, in.MustCatalog(ps), 100)
	if err != nil {
		t.Fatal(err)
	}

	res, err := Exec(context.Background(), q, ps, in.MustCatalog(ps), WithImproveUnder(100))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(wantRel) {
		t.Errorf("improved = %s, want %s", rel, wantRel)
	}
	rules, dom, ok := res.Improved()
	if !ok {
		t.Fatal("Improved must be populated with WithImproveUnder")
	}
	if rules.String() != wantRules.String() {
		t.Errorf("improved rules = %s, want %s", rules, wantRules)
	}
	if dom.Calls != wantDom.Calls || len(dom.Values) != len(wantDom.Values) {
		t.Errorf("dom = %+v, want %+v", dom, wantDom)
	}
	if _, ok := res.Star(); !ok {
		t.Error("WithImproveUnder implies the ANSWER* report")
	}
}
