package ucqn

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/adapter/fakedb"
	"repro/internal/engine"
	"repro/internal/workload"
)

// mirrorSQLCatalog mounts every relation of ps as a SQL adapter over a
// fakedb store loaded with the instance's rows — the external mirror of
// in.MustCatalog(ps).
func mirrorSQLCatalog(t *testing.T, in *Instance, ps *PatternSet, tag string) *Catalog {
	t.Helper()
	dsn := "diff_" + tag
	st := fakedb.StoreFor(dsn)
	st.Reset()
	var srcs []Source
	for _, name := range ps.Relations() {
		ar := ps.Arity(name)
		cols := make([]string, ar)
		for j := range cols {
			cols[j] = fmt.Sprintf("c%d", j)
		}
		var rows [][]string
		for _, tu := range in.Rows(name) {
			rows = append(rows, tu)
		}
		st.Load("t_"+name, cols, rows)
		var pats []string
		for _, p := range ps.Patterns(name) {
			pats = append(pats, string(p))
		}
		src, err := OpenAdapter(AdapterSpec{
			Name: name, Arity: ar, Patterns: pats,
			Backend: "sql://fakedb/" + dsn, Table: "t_" + name, Columns: cols,
		})
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}
	cat, err := NewCatalog(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// mirrorHTTPCatalog publishes every relation over the JSON group
// protocol on one test server and mounts HTTP adapters against it.
func mirrorHTTPCatalog(t *testing.T, in *Instance, ps *PatternSet) *Catalog {
	t.Helper()
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	var srcs []Source
	for _, name := range ps.Relations() {
		ar := ps.Arity(name)
		tbl, err := NewTable(name, ar, ps.Patterns(name), in.Rows(name))
		if err != nil {
			t.Fatal(err)
		}
		mux.Handle("/"+name, NewHTTPBackend(tbl))
		var pats []string
		for _, p := range ps.Patterns(name) {
			pats = append(pats, string(p))
		}
		src, err := OpenAdapter(AdapterSpec{
			Name: name, Arity: ar, Patterns: pats,
			Backend: srv.URL + "/" + name,
		})
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}
	cat, err := NewCatalog(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// Differential property: an adapter-backed catalog must be answer-
// equivalent to the in-memory catalog it mirrors, on random executable
// workloads with negation, in all three execution modes — materialized,
// streamed, partial-results. This is the contract that batched pushdown
// never changes call-visible semantics.
func TestAdapterDifferentialEquivalence(t *testing.T) {
	g := workload.New(271)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.4, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}

	modes := []struct {
		name string
		opts []ExecOption
	}{
		{"materialized", nil},
		{"streamed", []ExecOption{WithStreaming()}},
		{"partial", []ExecOption{WithPartialResults()}},
	}

	run := func(q Query, cat *Catalog, opts []ExecOption) (*Rel, error) {
		res, err := Exec(context.Background(), q, ps, cat, opts...)
		if err != nil {
			return nil, err
		}
		return res.Rel()
	}

	tested := 0
	for i := 0; i < 120 && tested < 25; i++ {
		u := g.UCQ(s, 2, cfg)
		ordered, ok := Reorder(u, ps)
		if !ok {
			continue
		}
		in := engine.NewInstance()
		if err := in.LoadFacts(g.Facts(s, 12, 6)); err != nil {
			t.Fatal(err)
		}
		memCat := in.MustCatalog(ps)
		sqlCat := mirrorSQLCatalog(t, in, ps, fmt.Sprintf("w%d", i))
		httpCat := mirrorHTTPCatalog(t, in, ps)

		for _, mode := range modes {
			want, err := run(ordered, memCat, mode.opts)
			if err != nil {
				t.Fatalf("workload %d (%s): in-memory: %v\n%s", i, mode.name, err, ordered)
			}
			gotSQL, err := run(ordered, sqlCat, mode.opts)
			if err != nil {
				t.Fatalf("workload %d (%s): sql adapter: %v\n%s", i, mode.name, err, ordered)
			}
			if !gotSQL.Equal(want) {
				t.Fatalf("workload %d (%s): sql adapter diverges\n%s\nadapter: %s\nmemory:  %s",
					i, mode.name, ordered, gotSQL, want)
			}
			gotHTTP, err := run(ordered, httpCat, mode.opts)
			if err != nil {
				t.Fatalf("workload %d (%s): http adapter: %v\n%s", i, mode.name, err, ordered)
			}
			if !gotHTTP.Equal(want) {
				t.Fatalf("workload %d (%s): http adapter diverges\n%s\nadapter: %s\nmemory:  %s",
					i, mode.name, ordered, gotHTTP, want)
			}
		}
		tested++
	}
	if tested < 25 {
		t.Errorf("only %d/25 workloads engaged", tested)
	}
}

// The same equivalence holds when batching actually fires: a fan-out
// join through an adapter must produce the per-call answers while
// making far fewer round trips.
func TestAdapterBatchedJoinEquivalence(t *testing.T) {
	q := MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`)
	ps := MustParsePatterns(`R^oo T^io`)
	in := engine.NewInstance()
	for i := 0; i < 300; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%20))
	}
	for z := 0; z < 20; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	memCat := in.MustCatalog(ps)
	sqlCat := mirrorSQLCatalog(t, in, ps, "batchjoin")

	memRes, err := Exec(context.Background(), q, ps, memCat)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := memRes.Rel()
	res, err := Exec(context.Background(), q, ps, sqlCat, WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Rel()
	if !got.Equal(want) {
		t.Fatal("batched adapter answers diverge from in-memory answers")
	}
	prof, _ := res.Profile()
	if prof.Calls.BatchGroups == 0 || prof.Calls.BatchedCalls < 20 {
		t.Fatalf("pushdown did not fire: %+v", prof.Calls)
	}
	st := sqlCat.TotalStats()
	if st.RoundTrips >= st.Calls {
		t.Fatalf("no round-trip saving: %d trips for %d calls", st.RoundTrips, st.Calls)
	}
}
