package ucqn

// External source adapters: the facade over internal/adapter. An
// adapter mounts a real backend — a SQL database via database/sql, an
// HTTP endpoint speaking the JSON group protocol — as a limited-access
// Source, so the whole stack (caching, breakers, replicas, budgets,
// ANSWER* degradation) applies to external systems unchanged. Adapters
// batch: they implement BatchSource, and the engine services a whole
// deduplicated binding group in one wire round trip when the source
// supports it.

import (
	"context"

	"repro/internal/adapter"
	"repro/internal/engine"
	"repro/internal/sources"
)

// Adapter types.
type (
	// AdapterSpec describes one relation mounted on an external backend.
	AdapterSpec = adapter.Spec
	// CatalogConfig is one tenant's relations mapped onto backends.
	CatalogConfig = adapter.CatalogConfig
	// AdapterConfig is a parsed catalog config file (one or more tenants).
	AdapterConfig = adapter.Config
	// SQLAdapter is the database/sql-backed adapter ("sql://" scheme).
	SQLAdapter = adapter.SQL
	// HTTPAdapter is the JSON-group-protocol adapter ("http(s)://").
	HTTPAdapter = adapter.HTTP
	// HTTPBackend is the reference server for the JSON group protocol.
	HTTPBackend = adapter.Backend
	// BatchSource is a source that services a whole binding group in one
	// round trip; the engine detects it via IsBatchCapable.
	BatchSource = sources.BatchSource
)

// OpenAdapter builds the source for a spec, dispatching on the scheme
// of spec.Backend (see RegisterAdapter).
func OpenAdapter(spec AdapterSpec) (Source, error) { return adapter.Open(spec) }

// RegisterAdapter installs an opener for a backend scheme.
func RegisterAdapter(scheme string, open func(AdapterSpec) (Source, error)) {
	adapter.Register(scheme, open)
}

// AdapterSchemes lists the registered backend schemes.
func AdapterSchemes() []string { return adapter.Schemes() }

// ParseCatalogConfig decodes a catalog config (single- or multi-tenant
// JSON).
func ParseCatalogConfig(data []byte) (*AdapterConfig, error) { return adapter.ParseConfig(data) }

// LoadCatalogConfig reads and parses a catalog config file.
func LoadCatalogConfig(path string) (*AdapterConfig, error) { return adapter.LoadConfig(path) }

// NewHTTPBackend serves src over the JSON group protocol (mount it on
// any http server to publish a source to remote HTTPAdapters).
func NewHTTPBackend(src Source) *HTTPBackend { return adapter.NewBackend(src) }

// IsBatchCapable reports whether calls to s can be batched — s (or the
// bottom of its wrapper stack) genuinely services a group per round
// trip.
func IsBatchCapable(s Source) bool { return sources.IsBatchCapable(s) }

// CallBatch services a group of input vectors against s: one round trip
// when s is batch capable, a per-vector loop otherwise. Results align
// with inputs.
func CallBatch(ctx context.Context, s Source, p Pattern, inputs [][]string) ([][]Tuple, error) {
	return sources.CallBatchWithContext(ctx, s, p, inputs)
}

// SetInternerCap bounds the process-wide value interner backing
// columnar evaluation: at most maxEntries values and maxBytes
// approximate resident bytes (0 = unlimited). Values beyond the cap
// spill to execution-local tables — answers are unaffected; memory
// stops growing. Cap traffic is surfaced in ExecProfile.Batch and the
// server's /v1/stats.
func SetInternerCap(maxEntries int, maxBytes int64) { engine.SetInternerCap(maxEntries, maxBytes) }

// InternerCapStats reports how many intern attempts the cap refused and
// whether the cap is currently reached.
func InternerCapStats() (capHits int64, capped bool) { return engine.InternerCapStats() }
