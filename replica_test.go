package ucqn

// Replica-aware execution through the facade: with one replica of
// three killed or slowed, every paper example still returns the
// *complete* answer — failover and hedging mask the faulty replica
// instead of degrading the result.

import (
	"context"
	"testing"
	"time"

	"repro/internal/workload"
)

// brokenCatalog wraps every source of a fresh paperInstance catalog
// with the given fault injector config.
func brokenCatalog(t testing.TB, ps *PatternSet, cfg FlakyConfig) *Catalog {
	t.Helper()
	base := paperInstance(ps).MustCatalog(ps)
	var srcs []Source
	for _, name := range base.Names() {
		srcs = append(srcs, NewFlakySource(base.Source(name), cfg))
	}
	cat, err := NewCatalog(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// slowCatalog wraps every source of a fresh paperInstance catalog with
// a fixed per-call delay.
func slowCatalog(t testing.TB, ps *PatternSet, d time.Duration) *Catalog {
	t.Helper()
	cat, err := DelayedCatalog(paperInstance(ps).MustCatalog(ps), d)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// healthyAnswer is the baseline: the underestimate evaluated against
// fault-free sources.
func healthyAnswer(t *testing.T, under Query, ps *PatternSet) *Rel {
	t.Helper()
	rel, err := execAnswer(under, ps, paperInstance(ps).MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// Every paper example, with the primary replica of every source dead
// (fast-failing): two healthy backups must keep the answer complete, in
// both materialized and streamed execution.
func TestExecReplicasSurviveDeadReplica(t *testing.T) {
	for _, ex := range workload.PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			under := Plan(ex.Query, ex.Patterns).Under
			want := healthyAnswer(t, under, ex.Patterns)

			for _, streamed := range []bool{false, true} {
				name := "materialized"
				if streamed {
					name = "streamed"
				}
				t.Run(name, func(t *testing.T) {
					dead := brokenCatalog(t, ex.Patterns, FlakyConfig{FailEveryN: 1})
					opts := []ExecOption{
						WithRuntime(fastRuntime()),
						WithReplicas(paperInstance(ex.Patterns).MustCatalog(ex.Patterns),
							paperInstance(ex.Patterns).MustCatalog(ex.Patterns)),
						WithPartialResults(),
					}
					if streamed {
						opts = append(opts, WithStreaming())
					}
					res, err := Exec(context.Background(), under, ex.Patterns, dead, opts...)
					if err != nil {
						t.Fatalf("replicated run failed: %v", err)
					}
					rel, err := res.Rel()
					if err != nil {
						t.Fatal(err)
					}
					if !rel.Equal(want) {
						t.Errorf("answer = %s, want the healthy %s", rel, want)
					}
					inc, ok := res.Incompleteness()
					if !ok {
						t.Fatal("no incompleteness report")
					}
					if !inc.Complete() {
						t.Errorf("with healthy backups the answer must be complete:\n%s", inc.Report())
					}
				})
			}
		})
	}
}

// Every paper example, with one replica of three hung (calls block
// until cancelled): hedging must race past the hung replica and keep
// the answer complete.
func TestExecReplicasHedgePastHungReplica(t *testing.T) {
	for _, ex := range workload.PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			under := Plan(ex.Query, ex.Patterns).Under
			want := healthyAnswer(t, under, ex.Patterns)

			hung := brokenCatalog(t, ex.Patterns, FlakyConfig{FailEveryN: 1, Hang: true})
			res, err := Exec(context.Background(), under, ex.Patterns, hung,
				WithRuntime(fastRuntime()),
				WithReplicas(paperInstance(ex.Patterns).MustCatalog(ex.Patterns),
					paperInstance(ex.Patterns).MustCatalog(ex.Patterns)),
				WithHedging(HedgePolicy{Delay: 2 * time.Millisecond}),
				WithPartialResults(), WithProfile())
			if err != nil {
				t.Fatalf("hedged run failed: %v", err)
			}
			rel, err := res.Rel()
			if err != nil {
				t.Fatal(err)
			}
			if !rel.Equal(want) {
				t.Errorf("answer = %s, want the healthy %s", rel, want)
			}
			inc, _ := res.Incompleteness()
			if !inc.Complete() {
				t.Errorf("hedging must keep the answer complete:\n%s", inc.Report())
			}
		})
	}
}

// One slow replica of three: hedging keeps answers complete and equal
// to the healthy baseline, and the profile surfaces the per-replica
// breakdown.
func TestExecReplicasHedgePastSlowReplica(t *testing.T) {
	ex := workload.PaperExamples()[0]
	under := Plan(ex.Query, ex.Patterns).Under
	want := healthyAnswer(t, under, ex.Patterns)

	slow := slowCatalog(t, ex.Patterns, 40*time.Millisecond)
	res, err := Exec(context.Background(), under, ex.Patterns, slow,
		WithReplicas(paperInstance(ex.Patterns).MustCatalog(ex.Patterns),
			paperInstance(ex.Patterns).MustCatalog(ex.Patterns)),
		WithHedging(HedgePolicy{Delay: time.Millisecond}),
		WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := res.Rel()
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(want) {
		t.Errorf("answer = %s, want %s", rel, want)
	}
	prof, ok := res.Profile()
	if !ok {
		t.Fatal("no profile")
	}
	if len(prof.Replicas) == 0 {
		t.Fatal("profile must carry the per-replica breakdown")
	}
	for _, rp := range prof.Replicas {
		if len(rp.Replicas) != 3 {
			t.Errorf("%s has %d replicas in the breakdown, want 3", rp.Source, len(rp.Replicas))
		}
	}
}

// Per-source latency metering reaches the facade: a delayed source's
// stats report its per-call latency.
func TestExecSurfacesLatencyStats(t *testing.T) {
	q := MustParseQuery(`Q(x) :- R(x).`)
	ps := MustParsePatterns(`R^o`)
	in := NewInstance().MustAdd("R", "a")
	cat, err := DelayedCatalog(in.MustCatalog(ps), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(context.Background(), q, ps, cat); err != nil {
		t.Fatal(err)
	}
	st := cat.TotalStats()
	if st.LatencyCalls != 1 {
		t.Fatalf("LatencyCalls = %d, want 1", st.LatencyCalls)
	}
	if st.MeanLatency() < 5*time.Millisecond {
		t.Errorf("mean latency = %s, want ≥ the injected 5ms", st.MeanLatency())
	}
	if st.EWMALatency < 5*time.Millisecond || st.MaxLatency < 5*time.Millisecond {
		t.Errorf("ewma=%s max=%s, want ≥ 5ms", st.EWMALatency, st.MaxLatency)
	}
}

// Option validation: replica options need a catalog and never combine
// with naive evaluation; mismatched backup schemas are rejected.
func TestExecReplicaOptionValidation(t *testing.T) {
	q := MustParseQuery(`Q(x) :- R(x).`)
	ps := MustParsePatterns(`R^o`)
	in := NewInstance().MustAdd("R", "a")
	if _, err := Exec(context.Background(), q, ps, nil, WithReplicas(in.MustCatalog(ps))); err == nil {
		t.Error("WithReplicas without a primary catalog must fail")
	}
	if _, err := Exec(context.Background(), q, nil, nil, WithNaive(in), WithReplicas(in.MustCatalog(ps))); err == nil {
		t.Error("WithNaive with WithReplicas must fail")
	}
	if _, err := Exec(context.Background(), q, nil, nil, WithNaive(in), WithHedging(HedgePolicy{Delay: time.Millisecond})); err == nil {
		t.Error("WithNaive with WithHedging must fail")
	}
	other := NewInstance().MustAdd("S", "a")
	if _, err := Exec(context.Background(), q, ps, in.MustCatalog(ps),
		WithReplicas(other.MustCatalog(MustParsePatterns(`S^o`)))); err == nil {
		t.Error("a backup catalog with different relations must fail")
	}
}
