package ucqn

// Exec is the single context-first entry point for every way this
// package evaluates a query: materialized, parallel, profiled, streamed,
// ANSWER*, semantically optimized, cost-ordered, or naive ground truth.
// The historical Answer* functions remain as thin deprecated wrappers
// around it.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// Stream is a pull-style iterator over answer tuples produced by a
// pipelined streaming execution (Exec with WithStreaming): call Next
// until it returns false, read each tuple with Tuple, then check Err and
// Close (Drain does all of that into a Rel).
type Stream = engine.Stream

// execConfig is the option-resolved shape of one Exec call.
type execConfig struct {
	rt         *Runtime
	parallel   bool
	profile    bool
	streaming  bool
	partial    bool
	star       bool
	improve    bool
	maxCalls   int
	naive      *Instance
	inds       INDSet
	hasINDs    bool
	stats      PlanStats
	hasStats   bool
	qc         *QueryCache
	persistDir string
	fleetDir   string

	replicas    []*Catalog
	hasReplicas bool
	hedge       HedgePolicy
	hasHedge    bool
	budget      Budget
	hasBudget   bool

	batchSize      int
	hasBatchSize   bool
	stageBuffer    int
	hasStageBuffer bool
}

// ExecOption configures Exec; build them with the With... constructors.
type ExecOption func(*execConfig)

// WithRuntime makes Exec use rt (deduplication, worker pool, retry,
// batch-size and stage-buffer knobs) instead of the shared default
// runtime.
func WithRuntime(rt *Runtime) ExecOption { return func(c *execConfig) { c.rt = rt } }

// WithParallelRules evaluates the rules of the union concurrently, one
// pipeline or materializer per rule.
func WithParallelRules() ExecOption { return func(c *execConfig) { c.parallel = true } }

// WithProfile records per-step execution accounting; read it with
// Result.Profile. With WithStreaming the profile becomes available once
// the stream finishes.
func WithProfile() ExecOption { return func(c *execConfig) { c.profile = true } }

// WithINDs semantically optimizes the query under the inclusion
// dependencies before planning (rules whose chase is unsatisfiable are
// dropped, Example 6 of the paper). Use only when the sources' data
// satisfies the dependencies.
func WithINDs(inds INDSet) ExecOption {
	return func(c *execConfig) { c.inds, c.hasINDs = inds, true }
}

// WithStats reorders each rule to minimize estimated source calls under
// the given cardinality statistics before executing.
func WithStats(st PlanStats) ExecOption {
	return func(c *execConfig) { c.stats, c.hasStats = st, true }
}

// WithStreaming executes the plan as a pipeline and exposes the answers
// through Result.Stream: head tuples become available while upstream
// steps are still calling sources. Exec returns as soon as the pipeline
// has started; runtime failures surface through the stream.
func WithStreaming() ExecOption { return func(c *execConfig) { c.streaming = true } }

// WithPartialResults enables graceful degradation: a rule whose
// evaluation fails terminally — circuit breaker open, per-query budget
// exhausted, retries exhausted, or a non-transient source error — is
// dropped and recorded instead of failing the execution. Result.Rel is
// then exactly the answer of the surviving rules: a certified
// underestimate of the full answer, in the spirit of ANSWER*'s ansᵤ;
// Result.Incompleteness reports the dropped disjuncts, their failing
// sources, and the disjunct-level completeness ratio. Caller-context
// cancellation and planning errors still abort. It does not combine
// with WithAnswerStar (a degraded overestimate certifies nothing) or
// WithNaive.
func WithPartialResults() ExecOption { return func(c *execConfig) { c.partial = true } }

// WithAnswerStar runs the full ANSWER* algorithm (Figure 4): Result.Rel
// is the certain underestimate and Result.Star carries the completeness
// report.
func WithAnswerStar() ExecOption { return func(c *execConfig) { c.star = true } }

// WithImproveUnder is WithAnswerStar followed by the domain-enumeration
// improvement of the underestimate (Example 8), spending at most
// maxCalls source calls on enumeration. Result.Rel is the improved
// underestimate; Result.Improved has the improved rules and enumeration
// metadata.
func WithImproveUnder(maxCalls int) ExecOption {
	return func(c *execConfig) { c.star, c.improve, c.maxCalls = true, true, maxCalls }
}

// WithNaive evaluates the query directly over the instance, ignoring
// access patterns — the ground truth for experiments. ps and cat may be
// nil; no other option combines with it.
func WithNaive(in *Instance) ExecOption { return func(c *execConfig) { c.naive = in } }

// WithReplicas fronts every relation with a replica set: the primary
// catalog passed to Exec is zipped with the given backup catalogs
// (which must declare the same relations and patterns), and each call
// routes to the healthiest replica, failing over on error. A rule then
// degrades to a partial answer only when every replica of a needed
// source has failed. The replica sets use the default configuration
// (healthiest-first routing, per-replica quarantine breakers); build a
// catalog with ReplicaCatalog yourself for custom routing or breaker
// settings.
func WithReplicas(backups ...*Catalog) ExecOption {
	return func(c *execConfig) {
		c.replicas = append(c.replicas, backups...)
		c.hasReplicas = true
	}
}

// WithHedging enables hedged requests against replicated sources for
// this execution: after the policy's delay (fixed, or an observed
// latency percentile) a backup attempt is launched on the
// next-healthiest replica, and the first success wins. Sources that are
// not replica sets (see WithReplicas or ReplicaCatalog) are unaffected.
// The runtime is cloned for the execution, so a shared runtime passed
// via WithRuntime is not mutated.
func WithHedging(h HedgePolicy) ExecOption {
	return func(c *execConfig) { c.hedge, c.hasHedge = h, true }
}

// WithBudget caps this execution's source traffic with the per-query
// call/time budget b, without mutating a shared runtime (the runtime is
// cloned for the call). Exhausting the budget fails the in-flight call
// with ErrCallBudget; under WithPartialResults the affected disjuncts
// degrade instead, yielding a certified underestimate. A negative
// MaxCalls admits no source calls at all — with WithPartialResults and
// a query cache the execution answers purely from cached disjuncts,
// the overload-shedding mode of a serving layer.
func WithBudget(b Budget) ExecOption {
	return func(c *execConfig) { c.budget, c.hasBudget = b, true }
}

// WithBatchSize sets the number of bindings per columnar batch flowing
// between the pipeline stages of this execution (streaming mode; a
// materialized run evaluates each step over one batch regardless).
// Larger batches amortize per-batch overhead, smaller ones lower the
// latency to the first answer. n must be ≥ 1; 0 — the zero value of an
// unset option — is rejected rather than silently meaning "default".
// The runtime is cloned for the call, so a shared runtime passed via
// WithRuntime is not mutated.
func WithBatchSize(n int) ExecOption {
	return func(c *execConfig) { c.batchSize, c.hasBatchSize = n, true }
}

// WithStageBuffer sets the capacity of the channels between consecutive
// pipeline stages for this execution (streaming mode): how many batches
// a stage may run ahead of its consumer. n must be ≥ 1. The runtime is
// cloned for the call, so a shared runtime passed via WithRuntime is
// not mutated.
func WithStageBuffer(n int) ExecOption {
	return func(c *execConfig) { c.stageBuffer, c.hasStageBuffer = n, true }
}

// Result is the handle Exec returns. Which accessors are populated
// depends on the options: Rel always yields the materialized answers
// (draining the stream first in streaming mode), Stream is non-nil only
// with WithStreaming, Profile reports ok only with WithProfile, Star and
// Improved only with WithAnswerStar / WithImproveUnder.
type Result struct {
	rel    *Rel
	stream *Stream

	profiled bool
	prof     ExecProfile

	star    *AnswerStar
	improve bool
	rules   Query
	dom     DomResult

	inc *Incompleteness // partial-results report (materialized path)
}

// Rel returns the materialized answers. In streaming mode the first call
// drains the stream (subsequent calls reuse the result); a pipeline
// failure is returned as the error.
func (r *Result) Rel() (*Rel, error) {
	if r.rel == nil && r.stream != nil {
		rel, err := r.stream.Drain()
		if err != nil {
			return nil, err
		}
		r.rel = rel
	}
	return r.rel, nil
}

// Stream returns the answer stream, or nil unless the query ran with
// WithStreaming. The caller owns it: iterate with Next/Tuple and Close
// it (or use Drain, or Result.Rel).
func (r *Result) Stream() *Stream { return r.stream }

// Profile returns the execution profile and whether one was recorded
// (requires WithProfile). In streaming mode it is complete only after
// the stream finished — ok is false before that.
func (r *Result) Profile() (ExecProfile, bool) {
	if !r.profiled {
		return ExecProfile{}, false
	}
	if r.stream != nil {
		return r.stream.Profile()
	}
	return r.prof, true
}

// Incompleteness returns the degradation report (requires
// WithPartialResults). In streaming mode it is available only after the
// stream finished — ok is false before that. A complete report (no
// failures) still returns ok = true; check Complete() on it.
func (r *Result) Incompleteness() (Incompleteness, bool) {
	if r.stream != nil {
		return r.stream.Incomplete()
	}
	if r.inc == nil {
		return Incompleteness{}, false
	}
	return *r.inc, true
}

// Star returns the ANSWER* report (requires WithAnswerStar or
// WithImproveUnder).
func (r *Result) Star() (AnswerStar, bool) {
	if r.star == nil {
		return AnswerStar{}, false
	}
	return *r.star, true
}

// Improved returns the domain-enumeration-improved underestimate rules
// and the enumeration outcome (requires WithImproveUnder).
func (r *Result) Improved() (Query, DomResult, bool) {
	if !r.improve {
		return Query{}, DomResult{}, false
	}
	return r.rules, r.dom, true
}

// Exec evaluates q against the limited-access catalog under the declared
// patterns, honoring ctx through every source call. With no options it
// is the materialized Answer on the default runtime; options select the
// runtime, rule parallelism, profiling, streaming, ANSWER*, semantic
// optimization, cost-based ordering, partial results under failure, or
// naive ground-truth evaluation.
//
//	res, err := ucqn.Exec(ctx, q, ps, cat, ucqn.WithStreaming())
//	if err != nil { ... }
//	s := res.Stream()
//	defer s.Close()
//	for s.Next() { use(s.Tuple()) }
//	if err := s.Err(); err != nil { ... }
//
// Exec returns an error for contradictory option combinations (see each
// option), for unplannable queries, and — except in streaming mode,
// where runtime failures surface through Stream.Err — for execution
// failures.
func Exec(ctx context.Context, q Query, ps *PatternSet, cat *Catalog, opts ...ExecOption) (*Result, error) {
	var c execConfig
	for _, o := range opts {
		o(&c)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.naive != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rel, err := engine.AnswerNaive(q, c.naive)
		if err != nil {
			return nil, err
		}
		return &Result{rel: rel}, nil
	}
	rt := c.rt
	if rt == nil {
		rt = engine.DefaultRuntime()
	}
	if c.hasReplicas {
		if cat == nil {
			return nil, errors.New("ucqn: WithReplicas needs a primary catalog")
		}
		combined, _, err := ReplicaCatalog(ReplicaConfig{}, append([]*Catalog{cat}, c.replicas...)...)
		if err != nil {
			return nil, err
		}
		cat = combined
	}
	if c.hasHedge {
		rt = rt.Clone()
		rt.Hedge = c.hedge
	}
	if c.hasBudget {
		rt = rt.Clone()
		rt.Budget = c.budget
	}
	if c.hasBatchSize {
		rt = rt.Clone()
		rt.BatchSize = c.batchSize
	}
	if c.hasStageBuffer {
		rt = rt.Clone()
		rt.StageBuffer = c.stageBuffer
	}
	if c.hasINDs {
		q = c.inds.OptimizeChase(q)
	}
	if c.hasStats {
		ordered, ok := core.CostOrderUCQ(q, ps, c.stats)
		if !ok {
			return nil, errors.New("ucqn: query is not orderable under the declared access patterns")
		}
		q = ordered
	}
	if c.persistDir != "" {
		qc, err := OpenQueryCache(c.persistDir, QueryCacheOptions{})
		if err != nil {
			return nil, err
		}
		c.qc = qc
	}
	if c.fleetDir != "" {
		qc, _, err := OpenFleetCache(c.fleetDir, QueryCacheOptions{}, FleetOptions{})
		if err != nil {
			return nil, err
		}
		c.qc = qc
	}
	if c.useQueryCache() {
		entry, info := c.qc.Plan(q, ps)
		if err := entry.Err(); err != nil {
			return nil, err
		}
		if c.streaming {
			return execCachedStream(ctx, rt, &c, entry, info, ps, cat)
		}
		return execCachedMaterialized(ctx, rt, &c, entry, info, ps, cat)
	}
	switch {
	case c.star:
		star, err := rt.RunAnswerStar(ctx, q, ps, cat)
		if err != nil {
			return nil, err
		}
		res := &Result{rel: star.Under, star: &star}
		if c.improve {
			improved, rules, dom, err := rt.ImproveUnder(ctx, star, ps, cat, c.maxCalls)
			if err != nil {
				return nil, err
			}
			res.rel, res.improve, res.rules, res.dom = improved, true, rules, dom
		}
		return res, nil
	case c.streaming:
		s, err := rt.StreamEval(ctx, q, ps, cat, engine.StreamOpts{Parallel: c.parallel, Partial: c.partial})
		if err != nil {
			return nil, err
		}
		return &Result{stream: s, profiled: c.profile}, nil
	default:
		rel, prof, inc, err := rt.Eval(ctx, q, ps, cat, engine.EvalOpts{
			Parallel: c.parallel,
			Profile:  c.profile,
			Partial:  c.partial,
		})
		if err != nil {
			return nil, err
		}
		return &Result{rel: rel, profiled: c.profile, prof: prof, inc: inc}, nil
	}
}

// validate rejects contradictory option combinations up front.
func (c *execConfig) validate() error {
	if c.naive != nil {
		switch {
		case c.star, c.streaming, c.profile, c.parallel, c.partial:
			return errors.New("ucqn: WithNaive does not combine with execution options")
		case c.hasINDs, c.hasStats, c.rt != nil, c.persistDir != "", c.fleetDir != "":
			return errors.New("ucqn: WithNaive ignores access patterns; planning options do not apply")
		case c.hasReplicas, c.hasHedge, c.hasBudget:
			return errors.New("ucqn: WithNaive makes no source calls; replica and budget options do not apply")
		case c.hasBatchSize, c.hasStageBuffer:
			return errors.New("ucqn: WithNaive runs no pipeline; batch options do not apply")
		}
		return nil
	}
	if c.star {
		if c.streaming || c.profile || c.parallel {
			return errors.New("ucqn: WithAnswerStar does not combine with streaming, profiling, or parallel rules")
		}
		if c.partial {
			return errors.New("ucqn: WithAnswerStar does not combine with WithPartialResults: a degraded overestimate certifies nothing")
		}
	}
	if c.profile && c.parallel && !c.streaming {
		return fmt.Errorf("ucqn: materialized profiling is per rule in sequence; combine WithProfile + WithParallelRules only with WithStreaming")
	}
	if c.persistDir != "" && c.qc != nil {
		return errors.New("ucqn: WithPersistence already selects a query cache; do not combine it with WithQueryCache")
	}
	if c.fleetDir != "" && c.qc != nil {
		return errors.New("ucqn: WithFleet already selects a query cache; do not combine it with WithQueryCache")
	}
	if c.fleetDir != "" && c.persistDir != "" {
		return errors.New("ucqn: WithFleet and WithPersistence are mutually exclusive; a fleet directory is already persistent")
	}
	if c.hasBatchSize && c.batchSize < 1 {
		return fmt.Errorf("ucqn: WithBatchSize(%d): batch size must be at least 1", c.batchSize)
	}
	if c.hasStageBuffer && c.stageBuffer < 1 {
		return fmt.Errorf("ucqn: WithStageBuffer(%d): stage buffer must be at least 1", c.stageBuffer)
	}
	return nil
}
